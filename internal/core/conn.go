package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"ncs/internal/buf"
	"ncs/internal/errctl"
	"ncs/internal/flowctl"
	"ncs/internal/netsim"
	"ncs/internal/packet"
	"ncs/internal/platform"
	"ncs/internal/stream"
	"ncs/internal/telemetry"
	"ncs/internal/transport"
)

// maxTrackedSessions bounds the inbound session table; the oldest
// completed sessions are pruned beyond this. A pruned session can no
// longer re-acknowledge duplicate retransmissions, which is safe: by the
// time 64 newer sessions completed, the peer's sender has long finished.
const maxTrackedSessions = 64

// deliveredQueueDepth is the number of fully reassembled messages that
// may wait for NCS_recv before the Receive Thread blocks (natural
// backpressure toward the data connection).
const deliveredQueueDepth = 128

// streamSendSlots bounds how many data SDUs from non-zero streams may
// sit in a connection's outbound queue at once. The shared queue is
// FIFO: without the bound, a bulk stream keeps it full of its own SDUs
// and every stream-0 frame (RPC calls, latency-sensitive sends) waits
// behind a whole credit window of bulk before reaching the wire. With
// it, a stream-0 SDU finds at most streamSendSlots stream SDUs ahead
// of itself, while bulk still batches deep enough to keep the wire
// busy. Slots are a single pool across all non-zero streams — they
// bound total queue residency, and the channel semaphore's FIFO
// hand-off keeps concurrent streams interleaving fairly.
const streamSendSlots = 8

// sendQueueDepth is the Send Thread's queue. Deep enough that a
// multi-SDU transfer can pipeline SDUs behind flow-control admission,
// which is what gives the Send Thread batches to coalesce.
const sendQueueDepth = 64

// sendBatchMax bounds how many queued SDUs the Send Thread coalesces
// into one vectored transport write.
const sendBatchMax = 16

// Message is a received user message. Lost reports SDUs missing from an
// unreliable (ErrorControl: None) transfer; it is always zero on
// reliable connections.
type Message struct {
	Data []byte
	Lost int
}

// sendItem is one SDU handed to the Send Thread, optionally carrying
// instrumentation state for Table I measurements. When ctrl is non-nil
// the item is an in-band control packet (InbandControl mode) instead of
// an SDU.
type sendItem struct {
	sdu        errctl.SDU
	ctrl       *packet.Control
	trace      *SendTrace
	done       chan struct{} // non-nil: Send Thread closes after transmission
	streamSlot bool          // release one of the connection's stream send slots after transmission
}

// ctrlEvent is a control packet leaving a receive loop for another
// goroutine. ref is the pooled receive buffer backing ctl.Body — a
// reference handed off by the receive loop (buf.Handoff) that the
// consumer must release once it is done with the body; nil when the
// body does not alias pooled storage.
type ctrlEvent struct {
	ctl packet.Control
	ref *buf.Buffer
}

// release drops the event's buffer reference, if it carries one.
func (e ctrlEvent) release() {
	if e.ref != nil {
		e.ref.Release()
	}
}

// recvSession wraps an inbound error-control session with its delivery
// state. Sessions recycle through recvSessionPool when pruned: one
// arrives per received message, so on unreliable streams the wrapper
// would otherwise be a steady per-message allocation.
type recvSession struct {
	rcv       errctl.Receiver
	delivered bool
}

var recvSessionPool = sync.Pool{New: func() any { return new(recvSession) }}

// Connection is one NCS point-to-point connection: a data connection
// and a control connection, the per-connection threads of Figure 4, and
// the flow/error control configuration chosen at establishment.
type Connection struct {
	sys  *System
	peer string
	id   uint32
	opts Options

	data transport.Conn
	ctrl transport.Conn

	// Flow control state is created on first use (flowSend/flowRecv):
	// an idle connection that never sends or receives a data packet
	// carries none. The pointers publish lazily-built interface values;
	// c.mu serialises construction.
	fcSend atomic.Pointer[flowctl.Sender]
	fcRecv atomic.Pointer[flowctl.Receiver]

	// sendQ and ctrlQ exist only on threaded runtimes — the sharded
	// runtime deposits on its shard's outbound queue and the fast path
	// writes inline, so neither pays for queues it never uses.
	sendQ chan sendItem
	ctrlQ chan packet.Control

	// delivered is the connection's completed-message queue, created on
	// first delivery or first Recv (deliveredQ) — both producer and
	// consumer go through the accessor, so neither can miss the other.
	delivered atomic.Pointer[chan Message]

	// mu guards the lazy session and waiter tables below, both nil
	// until the first inbound reliable session (sessions) or the first
	// outbound reliable send (waiters).
	mu       sync.Mutex
	sessions map[uint32]*recvSession
	sessAge  []uint32
	waiters  map[uint32]chan ctrlEvent

	nextSession atomic.Uint32

	// txCounter and rxCounter are connection-lifetime packet indices fed
	// to flow control, so that window/credit state spans sessions even
	// though SDU sequence numbers restart per message.
	txCounter atomic.Uint32
	rxCounter atomic.Uint32

	fastSendMu sync.Mutex // serialises fast-path senders
	fastRecvMu sync.Mutex // serialises fast-path pump holders
	fastCtrlMu sync.Mutex // serialises fast-path control writes

	// Stream multiplexing state (see internal/stream). The mux is lazy:
	// a connection that never opens a stream carries none, and stream 0
	// — the default channel — never touches it. initiator fixes stream
	// id parity (dialer odd, acceptor even).
	initiator bool
	muxp      atomic.Pointer[stream.Mux]

	// streamSlots is the counting semaphore behind streamSendSlots,
	// shared by every non-zero stream's queued data SDUs. Lazy: built
	// by streamSlotCh on a connection's first stream send.
	streamSlotsP atomic.Pointer[chan struct{}]

	// Fast-path stream plumbing: with no receive threads, whichever
	// goroutine holds fastRecvMu pumps the data transport for everyone,
	// parking other channels' completions. pumpFree (cap 1) wakes one
	// waiter when the pump is released; park0/bell0 hold stream-0
	// messages a stream receiver pumped up. Built only for FastPath.
	pumpFree chan struct{}
	park0Mu  sync.Mutex
	park0    []Message
	nPark0   atomic.Int32
	bell0    chan struct{}

	// sh is the connection's shard attachment (RuntimeSharded only);
	// inbox, when bound, merges this connection's deliveries into a
	// shared queue.
	sh    *shardConn
	inbox atomic.Pointer[Inbox]

	closeOnce sync.Once
	closedCh  chan struct{}
	wg        sync.WaitGroup

	lastTrace atomic.Pointer[SendTrace]
	stats     statCounters
	rtt       rttEstimator

	lastHeard atomic.Int64 // unix nanos of the last inbound packet
	failed    atomic.Bool  // heartbeat declared the peer dead
}

func newConnection(sys *System, peer string, id uint32, opts Options, data, ctrl transport.Conn, initiator bool) *Connection {
	if opts.Platform != nil {
		data = platform.Tax(data, *opts.Platform)
		ctrl = platform.Tax(ctrl, *opts.Platform)
	}
	c := &Connection{
		sys:       sys,
		peer:      peer,
		id:        id,
		opts:      opts,
		data:      data,
		ctrl:      ctrl,
		initiator: initiator,
		closedCh:  make(chan struct{}),
	}
	c.lastHeard.Store(time.Now().UnixNano())
	switch {
	case opts.FastPath:
		// No threads: Send/Recv run the protocol inline (§4.2). The
		// fast path bypasses the sharded runtime exactly as it
		// bypasses the threads.
		c.pumpFree = make(chan struct{}, 1)
		c.bell0 = make(chan struct{}, 1)
	case opts.Runtime == RuntimeSharded:
		// No per-connection threads either: the System's shard pool
		// drives the connection's protocol machinery (shard.go).
		c.attachShard()
	case opts.InbandControl:
		// Ablation mode: control shares the data connection, so the
		// Send Thread carries both and the Receive Thread demultiplexes
		// — exactly the per-packet demux cost the split planes avoid.
		c.sendQ = make(chan sendItem, sendQueueDepth)
		c.wg.Add(2)
		go c.sendThread()
		go c.recvThread()
	default:
		// Data plane: per-connection Send and Receive Threads; control
		// plane: per-connection Control Send/Receive Threads.
		c.sendQ = make(chan sendItem, sendQueueDepth)
		c.ctrlQ = make(chan packet.Control, 16)
		c.wg.Add(4)
		go c.sendThread()
		go c.recvThread()
		go c.ctrlSendThread()
		go c.ctrlRecvThread()
	}
	if opts.Heartbeat > 0 && !opts.FastPath && c.sh == nil {
		c.wg.Add(1)
		go c.heartbeatThread()
	}
	return c
}

// flowSend returns the connection's flow-control sender, creating it
// on first use. The fast path is one atomic load.
func (c *Connection) flowSend() flowctl.Sender {
	if p := c.fcSend.Load(); p != nil {
		return *p
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if p := c.fcSend.Load(); p != nil {
		return *p
	}
	fs := flowctl.NewSender(c.opts.FlowControl, c.opts.FlowConfig)
	select {
	case <-c.closedCh:
		// Construction raced Close (which tears flow control down under
		// this same mutex): close the newcomer so no admission waiter
		// can block on a sender teardown never saw.
		fs.Close()
	default:
	}
	c.fcSend.Store(&fs)
	return fs
}

// flowRecv returns the connection's flow-control receiver, creating it
// on first use.
func (c *Connection) flowRecv() flowctl.Receiver {
	if p := c.fcRecv.Load(); p != nil {
		return *p
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if p := c.fcRecv.Load(); p != nil {
		return *p
	}
	fr := flowctl.NewReceiver(c.opts.FlowControl, c.opts.FlowConfig)
	if !c.opts.FastPath {
		// Give a credit receiver an asynchronous emitter so its
		// refill-retry timer can re-advertise a possibly-lost grant. The
		// fast path gets none: it emits control inline on the receive
		// procedure's goroutine, and an emitterless receiver arms no
		// timers at all.
		flowctl.SetEmitter(fr, func(ctl packet.Control) bool {
			ctl.ConnID = c.id
			return c.enqueueCtrl(ctl)
		})
	}
	select {
	case <-c.closedCh:
		fr.Close()
	default:
	}
	c.fcRecv.Store(&fr)
	return fr
}

// FlowStats snapshots the connection's credit flow-control sender state
// (grants, in-flight, congestion window). ok is false when the
// connection does not use credit flow control or has not sent yet.
func (c *Connection) FlowStats() (flowctl.SenderStats, bool) {
	p := c.fcSend.Load()
	if p == nil {
		return flowctl.SenderStats{}, false
	}
	return flowctl.SenderStatsOf(*p)
}

// deliveredQ returns the completed-message queue, creating it on first
// use. Producers (recvThread, the shard's deliver) and consumers
// (RecvMessage) share this accessor, so a consumer always selects on
// the same channel a producer delivers into.
func (c *Connection) deliveredQ() chan Message {
	if p := c.delivered.Load(); p != nil {
		return *p
	}
	ch := make(chan Message, deliveredQueueDepth)
	if c.delivered.CompareAndSwap(nil, &ch) {
		return ch
	}
	return *c.delivered.Load()
}

// attachShard registers the connection with its System's shard pool:
// pollable transports (HPI) feed the shard's event loop directly at
// zero goroutines; others get a minimal pump goroutine per transport
// that only reads the wire — every protocol decision still runs on
// the shard.
func (c *Connection) attachShard() {
	sh := c.sys.shardFor(c.id)
	sc := &shardConn{
		shard:     sh,
		sendSlots: make(chan struct{}, sendQueueDepth),
		lastPing:  time.Now(),
	}
	c.sh = sc
	if p, ok := transport.AsPoller(c.data); ok {
		sc.dataPoll = p
	} else {
		sc.dataIn = make(chan *buf.Buffer, pumpDepth)
		c.wg.Add(1)
		go c.pump(c.data, sc.dataIn)
	}
	if !c.opts.InbandControl {
		if p, ok := transport.AsPoller(c.ctrl); ok {
			sc.ctrlPoll = p
		} else {
			sc.ctrlIn = make(chan *buf.Buffer, pumpDepth)
			c.wg.Add(1)
			go c.pump(c.ctrl, sc.ctrlIn)
		}
	}
	sh.register(c)
}

// pump bridges a non-pollable transport into the shard loop: it parks
// in the blocking receive (the thing the transport cannot avoid) and
// hands packets over; everything else — demux, protocol, delivery —
// happens on the shard. Blocking on a full channel is the same
// backpressure a Receive Thread applies by not reading.
func (c *Connection) pump(t transport.Conn, ch chan *buf.Buffer) {
	defer c.wg.Done()
	for {
		b, err := t.RecvBuf()
		if err != nil {
			// Transport death is connection death, as in recvThread.
			go c.Close()
			return
		}
		select {
		case ch <- b:
			c.sh.shard.requeue(c)
		case <-c.closedCh:
			b.Release()
			return
		}
	}
}

// heartbeatThread probes the peer and declares it unreachable after
// three silent intervals, failing the connection.
func (c *Connection) heartbeatThread() {
	defer c.wg.Done()
	ticker := time.NewTicker(c.opts.Heartbeat)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			silent := time.Duration(time.Now().UnixNano() - c.lastHeard.Load())
			if silent > 3*c.opts.Heartbeat {
				c.failed.Store(true)
				// Close from a fresh goroutine: Close waits for this
				// thread via wg.Wait.
				go c.Close()
				return
			}
			c.enqueueCtrl(packet.Control{Type: packet.CtrlPing, ConnID: c.id})
		case <-c.closedCh:
			return
		}
	}
}

// closeErr maps connection shutdown to the caller-visible error.
func (c *Connection) closeErr() error {
	if c.failed.Load() {
		return ErrPeerUnreachable
	}
	return ErrConnClosed
}

// Done returns a channel closed when the connection has shut down —
// locally via Close or remotely via a heartbeat-declared peer failure.
// Layers above the core (the RPC client, application select loops) use
// it to observe connection state without polling.
func (c *Connection) Done() <-chan struct{} { return c.closedCh }

// Err reports the connection's terminal state: nil while it is live,
// ErrPeerUnreachable after a heartbeat failure, ErrConnClosed after any
// other shutdown.
func (c *Connection) Err() error {
	select {
	case <-c.closedCh:
		return c.closeErr()
	default:
		if c.failed.Load() {
			return ErrPeerUnreachable
		}
		return nil
	}
}

// ID returns the connection identifier assigned at setup.
func (c *Connection) ID() uint32 { return c.id }

// Peer returns the remote system name.
func (c *Connection) Peer() string { return c.peer }

// Options returns the connection's configuration.
func (c *Connection) Options() Options { return c.opts }

// ---------------------------------------------------------------------------
// Send path (steps 1–4 of Figure 4).

// Send transmits msg reliably or unreliably according to the
// connection's error control configuration, blocking until the transfer
// completes (reliable) or is fully handed to the interface (unreliable).
func (c *Connection) Send(msg []byte) error {
	if c.opts.FastPath {
		return c.sendFast(msg, nil)
	}
	return c.sendThreaded(msg, nil)
}

// unreliableSDU builds the header Segment would give SDU i of n of an
// unreliable message carrying payload, on the given stream.
func (c *Connection) unreliableSDU(payload []byte, streamID, sess uint32, i, n int) errctl.SDU {
	var flags uint16 = packet.FlagUnreliable
	if i == n-1 {
		flags |= packet.FlagEnd
	}
	return errctl.SDU{
		Header: packet.DataHeader{
			Flags:     flags,
			ConnID:    c.id,
			SessionID: sess,
			Seq:       uint32(i),
			Length:    uint32(len(payload)),
			StreamID:  streamID,
		},
		Payload: payload,
	}
}

// unreliableSegments returns the segmentation arithmetic for an
// unreliable message: the effective SDU size and the SDU count (an
// empty message still takes one empty end SDU).
func (c *Connection) unreliableSegments(msg []byte) (sduSize, n int) {
	sduSize = errctl.EffectiveSDUSize(c.opts.SDUSize)
	n = (len(msg) + sduSize - 1) / sduSize
	if n == 0 {
		n = 1
	}
	return sduSize, n
}

// sendUnreliable hands an unreliable (None error control) message to
// the Send Thread with no per-message sender machinery: a None session
// never retransmits, so nothing ever refers to it again and the whole
// sender object (session state, segmentation slice) can be skipped.
// Segmentation happens inline on the caller's stack; steady-state
// unreliable sends allocate nothing.
func (c *Connection) sendUnreliable(lane sendLane, msg []byte, sess uint32, tr *SendTrace) error {
	sduSize, n := c.unreliableSegments(msg)
	var one [1]errctl.SDU
	for i := 0; i < n; i++ {
		lo := i * sduSize
		hi := lo + sduSize
		if hi > len(msg) {
			hi = len(msg)
		}
		one[0] = c.unreliableSDU(msg[lo:hi], lane.streamID, sess, i, n)
		last := i == n-1
		var ltr *SendTrace
		if last {
			ltr = tr
		}
		if err := c.transmitOn(lane, one[:], ltr, last); err != nil {
			return err
		}
	}
	c.stats.messagesSent.Add(1)
	mSendMsgs.IncAt(c.id)
	return nil
}

// sendLane bundles the per-channel transmit state a send drives: the
// flow-control sender admitting each SDU and the lifetime transmit
// index it is fed. Stream 0 uses the connection's own pair; every
// other stream brings its own, which is what keeps an exhausted
// stream's admission wait from touching its siblings.
type sendLane struct {
	streamID uint32
	fc       flowctl.Sender
	tx       *atomic.Uint32
}

// lane0 is the connection's default (stream 0) send lane.
func (c *Connection) lane0() sendLane {
	return sendLane{fc: c.flowSend(), tx: &c.txCounter}
}

func (c *Connection) sendThreaded(msg []byte, tr *SendTrace) error {
	return c.sendThreadedOn(c.lane0(), msg, tr)
}

func (c *Connection) sendThreadedOn(lane sendLane, msg []byte, tr *SendTrace) error {
	if err := c.checkSendSize(msg); err != nil {
		return err
	}
	sess := c.nextSession.Add(1)
	telemetry.TraceStart(c.id, sess, len(msg))
	if c.opts.ErrorControl == errctl.None {
		if tr != nil {
			tr.stamp(&tr.tHeader)
		}
		return c.sendUnreliable(lane, msg, sess, tr)
	}
	snd := errctl.NewSenderStream(c.opts.ErrorControl, msg, c.opts.SDUSize, c.id, lane.streamID, sess)
	if tr != nil {
		tr.stamp(&tr.tHeader)
	}

	ackCh := make(chan ctrlEvent, 4)
	c.mu.Lock()
	if c.waiters == nil {
		c.waiters = make(map[uint32]chan ctrlEvent)
	}
	c.waiters[sess] = ackCh
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.waiters, sess)
		c.mu.Unlock()
		// Deposits happen under c.mu, so after the delete no new event
		// can land: drain whatever is buffered and release the receive
		// buffers those events retained (e.g. a duplicate final ack
		// that raced this session's completion).
		for {
			select {
			case ev := <-ackCh:
				ev.release()
			default:
				return
			}
		}
	}()

	if err := c.transmitOn(lane, snd.Initial(), tr, false); err != nil {
		return err
	}
	rto := func() time.Duration {
		if !c.opts.AdaptiveTimeout {
			return c.opts.AckTimeout
		}
		return c.rtt.timeout(c.opts.AckTimeout, minAdaptiveTimeout)
	}
	lastSend := time.Now()
	retransmitted := false // Karn's rule: skip samples after a retransmit

	// Retransmission timing: a sharded connection parks its timer on
	// the System's hashed wheel — thousands of in-flight reliable sends
	// then share one timer goroutine — while the threaded runtime keeps
	// its dedicated runtime timer, today's behaviour.
	var (
		timer  *time.Timer
		timerC <-chan time.Time
		wfire  chan struct{}
		wt     *wheelTimer
	)
	if c.sh != nil {
		wfire = make(chan struct{}, 1)
		wt = c.sys.timerWheel().newTimer(func() {
			select {
			case wfire <- struct{}{}:
			default:
			}
		})
		wt.reset(rto())
		defer wt.stop()
	} else {
		timer = time.NewTimer(rto())
		defer timer.Stop()
		timerC = timer.C
	}
	rearm := func() {
		if wt != nil {
			wt.reset(rto())
		} else {
			resetTimer(timer, rto())
		}
	}
	// Retransmissions transmit synchronously (the trailing true): their
	// payloads alias msg, which the caller may recycle the moment Send
	// returns, and the final ack can land while an async duplicate still
	// sits in the send queue. Waiting for the Send Thread's confirmation
	// — it copies the payload into its own staging buffer before
	// batching — keeps every queued alias inside Send's lifetime. The
	// original window needs no such barrier: an ack proves its SDUs were
	// already staged and written. Retransmission is the slow path; the
	// extra round trip to the Send Thread does not touch healthy sends.
	onTimeout := func() error {
		if err := c.transmitOn(lane, snd.OnTimeout(), nil, true); err != nil {
			return err
		}
		lastSend = time.Now()
		retransmitted = true
		rearm()
		return nil
	}
	for {
		select {
		case ev := <-ackCh:
			if c.opts.AdaptiveTimeout && !retransmitted {
				c.rtt.observe(time.Since(lastSend))
			}
			rt, done, err := snd.OnAck(ev.ctl)
			// OnAck parses the body synchronously, so the handed-off
			// receive buffer can recycle now.
			ev.release()
			if err != nil && !errors.Is(err, errctl.ErrSessionDone) {
				return err
			}
			if done {
				c.stats.messagesSent.Add(1)
				mSendMsgs.IncAt(c.id)
				return nil
			}
			if len(rt) > 0 {
				if err := c.transmitOn(lane, rt, nil, true); err != nil {
					return err
				}
				lastSend = time.Now()
				retransmitted = true
			}
			rearm()
		case <-timerC:
			if err := onTimeout(); err != nil {
				return err
			}
		case <-wfire:
			if err := onTimeout(); err != nil {
				return err
			}
		case <-c.closedCh:
			return ErrConnClosed
		}
	}
}

func resetTimer(t *time.Timer, d time.Duration) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
	t.Reset(d)
}

// doneChPool recycles the one-shot channels that synchronise a sender
// with the Send Thread's transmission confirmation. The Send Thread
// deposits a token (rather than closing), so a consumed channel is
// clean for reuse; channels abandoned on connection close are simply
// garbage collected.
var doneChPool = sync.Pool{New: func() any { return make(chan struct{}, 1) }}

// transmit performs the Error-Control → Flow-Control → Send-Thread
// hand-off for a batch of stream-0 SDUs. When sync is true it waits
// for the Send Thread to confirm the final SDU left the interface.
func (c *Connection) transmit(sdus []errctl.SDU, tr *SendTrace, sync bool) error {
	return c.transmitOn(c.lane0(), sdus, tr, sync)
}

// transmitOn is transmit against an arbitrary send lane: admission and
// the transmit index come from the lane, so a stream whose credit
// window is exhausted blocks only its own sender.
func (c *Connection) transmitOn(lane sendLane, sdus []errctl.SDU, tr *SendTrace, sync bool) error {
	fc := lane.fc
	// Each retransmission is error control's verdict that one earlier
	// transmission of that sequence was lost; hand the verdict to flow
	// control first, so the credit the loss returns can fund the
	// retransmission itself.
	rtx := 0
	for _, sdu := range sdus {
		if sdu.Header.Flags&packet.FlagRetransmit != 0 {
			rtx++
		}
	}
	if rtx > 0 {
		flowctl.NoteLoss(fc, rtx)
	}
	// The credit wait and the retransmission timer answer the same
	// question — how long before presuming something was lost — so a
	// connection with adaptive timeouts applies its RTT estimate here
	// too: a wedged grant is then repaired at round-trip pace instead
	// of the fixed fallback.
	wait := c.opts.AckTimeout
	if c.opts.AdaptiveTimeout {
		wait = c.rtt.timeout(c.opts.AckTimeout, minAdaptiveTimeout)
	}
	for i, sdu := range sdus {
		idx := lane.tx.Add(1) - 1
		for {
			err := fc.AcquireTimeout(idx, wait)
			if err == nil {
				break
			}
			if errors.Is(err, flowctl.ErrAcquireTimeout) {
				// On lossy links, dropped data packets consume credits
				// whose grants never return; resynchronise and retry.
				// On a stream lane this is also the unconsumed-peer case
				// — the wait burned a full interval without a grant.
				if lane.streamID != 0 {
					stream.NoteCreditWait()
					if err := c.streamSendable(lane.streamID); err != nil {
						return err
					}
				}
				fc.Resync()
				continue
			}
			if lane.streamID != 0 {
				if serr := c.streamSendable(lane.streamID); serr != nil {
					return serr
				}
			}
			return ErrConnClosed
		}
		c.stats.sdusSent.Add(1)
		c.stats.bytesSent.Add(uint64(len(sdu.Payload)))
		mSendSDUs.IncAt(c.id)
		mSendBytes.AddAt(c.id, int64(len(sdu.Payload)))
		if sdu.Header.Flags&packet.FlagRetransmit != 0 {
			c.stats.retransmissions.Add(1)
		}
		telemetry.TraceStamp(c.id, sdu.Header.SessionID, telemetry.StageStaged)
		item := sendItem{sdu: sdu}
		if lane.streamID != 0 {
			// Stream SDUs take a queue-residency slot so they can never
			// monopolise the outbound queue ahead of stream 0 (see
			// streamSendSlots); released after transmission.
			select {
			case c.streamSlotCh() <- struct{}{}:
				item.streamSlot = true
			case <-c.closedCh:
				return ErrConnClosed
			}
		}
		if i == len(sdus)-1 {
			item.trace = tr
			if sync {
				item.done = doneChPool.Get().(chan struct{})
			}
		}
		if tr != nil && i == len(sdus)-1 {
			tr.stamp(&tr.tQueued)
		}
		if !c.enqueueData(item) {
			return ErrConnClosed
		}
		if item.done != nil {
			select {
			case <-item.done:
				doneChPool.Put(item.done)
				if tr != nil {
					tr.stamp(&tr.tReturned)
				}
			case <-c.closedCh:
				// The channel may still receive its token; abandon it
				// to the garbage collector rather than repooling.
				return ErrConnClosed
			}
		}
	}
	return nil
}

// streamSlotCh returns the connection's stream send-slot semaphore,
// built on first use — a connection that never sends on a non-zero
// stream carries none.
func (c *Connection) streamSlotCh() chan struct{} {
	if p := c.streamSlotsP.Load(); p != nil {
		return *p
	}
	ch := make(chan struct{}, streamSendSlots)
	if c.streamSlotsP.CompareAndSwap(nil, &ch) {
		return ch
	}
	return *c.streamSlotsP.Load()
}

// enqueueData hands one data SDU to the connection's runtime: the Send
// Thread's queue (threaded) or the shard's outbound queue (sharded,
// after taking one of the connection's send slots — the same depth
// bound sendQ provides). It reports false when the connection closed.
func (c *Connection) enqueueData(item sendItem) bool {
	if sc := c.sh; sc != nil {
		select {
		case sc.sendSlots <- struct{}{}:
		case <-c.closedCh:
			if item.streamSlot {
				<-c.streamSlotCh()
			}
			return false
		}
		mSendQDepth.Observe(int64(len(sc.sendSlots)))
		return sc.shard.enqueueOut(outItem{
			c:          c,
			sdu:        item.sdu,
			trace:      item.trace,
			done:       item.done,
			slot:       true,
			streamSlot: item.streamSlot,
		})
	}
	mSendQDepth.Observe(int64(len(c.sendQ)))
	select {
	case c.sendQ <- item:
		return true
	case <-c.closedCh:
		if item.streamSlot {
			<-c.streamSlotCh()
		}
		return false
	}
}

func (c *Connection) checkSendSize(msg []byte) error {
	if max := c.data.MaxPacket(); max > 0 && c.opts.SDUSize+packet.DataHeaderSize > max {
		return ErrSendTooLarge
	}
	if c.opts.ErrorControl == errctl.None {
		// The receiver's dense unreliable reassembly tracks at most
		// MaxUnreliableSegments; a larger message would transmit fully
		// yet never complete on the far side, so refuse it here.
		if _, n := c.unreliableSegments(msg); n > errctl.MaxUnreliableSegments {
			return ErrSendTooLarge
		}
	}
	return nil
}

// sendThread is the per-connection Send Thread: it drains the message
// queue and performs only the data transfer for this connection. It
// drains sendQ opportunistically, coalescing up to sendBatchMax queued
// packets into one vectored transport write — under load, N SDUs share
// a single syscall and its framing cost; an idle connection still
// transmits each SDU the moment it arrives.
func (c *Connection) sendThread() {
	defer c.wg.Done()
	items := make([]sendItem, 0, sendBatchMax)
	batch := make([]*buf.Buffer, 0, sendBatchMax)
	for {
		select {
		case item := <-c.sendQ:
			items = append(items[:0], item)
		drain:
			for len(items) < sendBatchMax {
				select {
				case next := <-c.sendQ:
					items = append(items, next)
				default:
					break drain
				}
			}
			batch = batch[:0]
			for i := range items {
				it := &items[i]
				if it.trace != nil {
					it.trace.stamp(&it.trace.tDequeued)
				}
				var sb *buf.Buffer
				if it.ctrl != nil {
					sb = buf.GetCap(packet.ControlHeaderSize + len(it.ctrl.Body))
					sb.B = it.ctrl.Marshal(sb.B)
					c.stats.controlSent.Add(1)
				} else {
					sb = buf.GetCap(packet.DataHeaderSize + len(it.sdu.Payload))
					sb.B = packet.AppendSDU(sb.B, it.sdu.Header, it.sdu.Payload)
				}
				batch = append(batch, sb)
			}
			mCoalesceDepth.Observe(int64(len(batch)))
			err := c.data.SendBatch(batch) // consumes the buffer refs
			for i := range items {
				it := &items[i]
				if it.trace != nil {
					it.trace.stamp(&it.trace.tTransmitted)
				}
				if it.ctrl == nil {
					telemetry.TraceStamp(c.id, it.sdu.Header.SessionID, telemetry.StageWireOut)
				}
				if it.done != nil {
					it.done <- struct{}{} // one-token confirmation (pooled chan)
				}
				if it.streamSlot {
					<-c.streamSlotCh()
				}
			}
			if err != nil {
				// The connection is going down; propagate so Send
				// callers see ErrConnClosed via closedCh.
				go c.Close()
				return
			}
		case <-c.closedCh:
			return
		}
	}
}

// ---------------------------------------------------------------------------
// Receive path (steps 5–10 of Figure 4).

// Recv blocks for the next fully received message.
func (c *Connection) Recv() ([]byte, error) {
	m, err := c.RecvMessage()
	return m.Data, err
}

// RecvMessage is Recv with loss metadata (relevant for unreliable
// connections).
func (c *Connection) RecvMessage() (Message, error) {
	if c.opts.FastPath {
		return c.recvFast(0)
	}
	delivered := c.deliveredQ()
	select {
	case m := <-delivered:
		c.afterRecv()
		return m, nil
	case <-c.closedCh:
		// Drain anything completed before close.
		select {
		case m := <-delivered:
			return m, nil
		default:
			return Message{}, c.closeErr()
		}
	}
}

// afterRecv runs after a delivery-queue take: if the shard parked
// completed messages because the queue was full, ring it so they flush
// into the space just freed.
func (c *Connection) afterRecv() {
	if sc := c.sh; sc != nil && sc.hasStalled.Load() {
		sc.shard.requeue(c)
	}
}

// RecvTimeout is Recv with a deadline.
func (c *Connection) RecvTimeout(d time.Duration) ([]byte, error) {
	m, err := c.RecvMessageTimeout(d)
	return m.Data, err
}

// RecvMessageTimeout is RecvMessage with a deadline — the combination
// media streams need: loss metadata plus a playout deadline for frames
// whose final segment never arrived.
func (c *Connection) RecvMessageTimeout(d time.Duration) (Message, error) {
	if c.opts.FastPath {
		return c.recvFast(d)
	}
	select {
	case m := <-c.deliveredQ():
		c.afterRecv()
		return m, nil
	case <-c.closedCh:
		return Message{}, c.closeErr()
	case <-time.After(d):
		return Message{}, ErrRecvTimeout
	}
}

// BindInbox merges this connection's future deliveries into ib: they
// become InboxMessages on the shared queue instead of landing on the
// connection's own delivery queue. Bind before traffic starts (right
// after Connect/Accept); messages already delivered remain readable
// via Recv. Fast-path connections run delivery inline in Recv and
// cannot bind.
func (c *Connection) BindInbox(ib *Inbox) error {
	if c.opts.FastPath {
		return ErrFastPathOnly
	}
	c.inbox.Store(ib)
	return nil
}

// recvThread is the per-connection Receive Thread: it reads the data
// connection into pooled buffers and activates the flow- and
// error-control machinery. The receive buffer is released here; any
// layer that needs a payload view beyond this loop iteration (the
// error-control reassembly, a control waiter) retains it.
func (c *Connection) recvThread() {
	defer c.wg.Done()
	for {
		b, err := c.data.RecvBuf()
		if err != nil {
			// The data transport died: the peer tore the connection
			// down (or the local side is closing). Propagate to
			// connection state so blocked senders — e.g. a flow-control
			// admission retrying against a peer that will never grant
			// another credit — observe the teardown instead of spinning
			// forever. Close from a fresh goroutine: Close waits for
			// this thread via wg.Wait.
			go c.Close()
			return
		}
		c.lastHeard.Store(time.Now().UnixNano())
		h, payload, perr := packet.SplitData(b.B)
		if perr != nil {
			// In in-band mode the data connection also carries control
			// packets; demultiplex them here (the per-packet cost the
			// separate control connection eliminates).
			if c.opts.InbandControl {
				c.demuxControl(b)
			}
			b.Release()
			continue
		}
		m, ok := c.dispatchData(h, payload, b, c.enqueueCtrl)
		b.Release()
		if ok {
			telemetry.TraceFinish(c.id, h.SessionID)
			if ib := c.inbox.Load(); ib != nil {
				if ib.put(c, m) {
					continue
				}
				select {
				case <-c.closedCh:
					return
				default:
				}
				// The inbox closed under a live connection: unbind and
				// fall back to the connection's own queue.
				c.inbox.CompareAndSwap(ib, nil)
			}
			select {
			case c.deliveredQ() <- m:
			case <-c.closedCh:
				return
			}
		}
	}
}

// dispatchData runs one arriving SDU through the receive-side flow and
// error control, emitting control packets via emit. payload aliases
// the pooled receive buffer ref (which the error control retains if it
// must hold the segment); the caller still owns ref and releases it
// after dispatchData returns. It returns a completed message when the
// SDU finishes a session.
func (c *Connection) dispatchData(h packet.DataHeader, payload []byte, ref *buf.Buffer, emit func(packet.Control) bool) (Message, bool) {
	telemetry.TraceStamp(c.id, h.SessionID, telemetry.StageWireIn)
	// Stream frames route to their stream's own machinery before the
	// connection-level flow control ever sees them: stream arrivals
	// must not consume stream-0 credits (isolation), and completed
	// stream messages park on the stream, never on the connection's
	// delivery queue — so an unconsumed stream cannot stall the shard
	// loop, the receive thread, or stream 0.
	if h.StreamID != 0 {
		c.dispatchStream(h, payload, ref, emit)
		return Message{}, false
	}
	// Step 8–9: the Flow Control Thread updates its state and returns
	// credit/ack information over the control connection. Flow control
	// sees the connection-lifetime arrival index, not the per-session
	// SDU sequence number.
	rxIdx := c.rxCounter.Add(1) - 1
	for _, ctl := range c.flowRecv().OnData(rxIdx) {
		ctl.ConnID = c.id
		ctl.SessionID = h.SessionID
		if !emit(ctl) {
			return Message{}, false
		}
	}

	c.stats.sdusReceived.Add(1)
	c.stats.bytesReceived.Add(uint64(len(payload)))
	mRecvSDUs.IncAt(c.id)
	mRecvBytes.AddAt(c.id, int64(len(payload)))

	// Fast path mirroring the send side's singleSDU: a one-SDU message
	// on a connection without error control is complete on arrival — no
	// acknowledgments will follow and no retransmission can ever revive
	// the session, so the session table and reassembly machinery are
	// skipped entirely. Only the user-facing copy is made.
	if h.Seq == 0 && h.End() && c.opts.ErrorControl == errctl.None {
		c.stats.messagesReceived.Add(1)
		mRecvMsgs.IncAt(c.id)
		mRecvFastpath.IncAt(c.id)
		telemetry.TraceStamp(c.id, h.SessionID, telemetry.StageReassembled)
		out := make([]byte, len(payload))
		copy(out, payload)
		return Message{Data: out}, true
	}

	// Step 10: the Error Control Thread reassembles and acknowledges.
	c.mu.Lock()
	rs, ok := c.sessions[h.SessionID]
	if !ok {
		if c.sessions == nil {
			c.sessions = make(map[uint32]*recvSession)
		}
		rs = recvSessionPool.Get().(*recvSession)
		rs.rcv = errctl.NewReceiver(c.opts.ErrorControl)
		c.sessions[h.SessionID] = rs
		c.sessAge = append(c.sessAge, h.SessionID)
		c.pruneSessionsLocked()
	}
	c.mu.Unlock()

	acks, done := rs.rcv.OnData(h, payload, ref)
	for _, a := range acks {
		a.ConnID = c.id
		a.SessionID = h.SessionID
		if !emit(a) {
			return Message{}, false
		}
	}
	if len(acks) > 0 {
		// Piggyback the credit state on the ack burst: the consumed-count
		// refresh retires the peer's in-flight and feeds its congestion
		// controller without a dedicated control packet. Non-credit
		// receivers decline and cost one predicted branch.
		if g, ok := flowctl.Piggyback(c.flowRecv()); ok {
			g.ConnID = c.id
			g.SessionID = h.SessionID
			if !emit(g) {
				return Message{}, false
			}
		}
	}
	if done && !rs.delivered {
		rs.delivered = true
		c.stats.messagesReceived.Add(1)
		mRecvMsgs.IncAt(c.id)
		mRecvSession.IncAt(c.id)
		telemetry.TraceStamp(c.id, h.SessionID, telemetry.StageReassembled)
		return Message{Data: rs.rcv.Message(), Lost: rs.rcv.LostSDUs()}, true
	}
	return Message{}, false
}

func (c *Connection) pruneSessionsLocked() {
	for len(c.sessAge) > maxTrackedSessions {
		victim := c.sessAge[0]
		c.sessAge = c.sessAge[1:]
		rs, ok := c.sessions[victim]
		if !ok {
			continue
		}
		if !rs.delivered {
			// An incomplete session this old has no live sender (a
			// connection carries one outbound session at a time, and 64
			// newer ones have completed since): release the retained
			// segment buffers it pins. Should a retransmission somehow
			// still arrive, a fresh session restarts reassembly — the
			// whole-message retransmit schemes recover from empty.
			rs.rcv.Abandon()
		}
		delete(c.sessions, victim)
		// The dispatch loop is the sole user of the session (one
		// receive goroutine per connection), so once it leaves the
		// table its receiver and wrapper can recycle.
		errctl.Recycle(rs.rcv)
		*rs = recvSession{}
		recvSessionPool.Put(rs)
	}
}

// enqueueCtrl hands a control packet to the Control Send Thread (or,
// in in-band mode, to the Send Thread where it competes with data).
// It reports false when the connection closed.
func (c *Connection) enqueueCtrl(ctl packet.Control) bool {
	if sc := c.sh; sc != nil {
		// Sharded: the shard loop writes it, batched with whatever
		// else this cycle produced. Control packets are bounded by the
		// inbound budget that produced them, so they take no slot.
		return sc.shard.enqueueOut(outItem{
			c:        c,
			ctrl:     ctl,
			isCtrl:   true,
			ctrlPath: !c.opts.InbandControl,
		})
	}
	if c.opts.InbandControl {
		item := sendItem{ctrl: &ctl}
		select {
		case c.sendQ <- item:
			return true
		case <-c.closedCh:
			return false
		}
	}
	select {
	case c.ctrlQ <- ctl:
		return true
	case <-c.closedCh:
		return false
	}
}

// ctrlSendThread serialises control packets onto the control connection
// (the Control Send Thread of Figure 1), staging each through a pooled
// buffer.
func (c *Connection) ctrlSendThread() {
	defer c.wg.Done()
	for {
		select {
		case ctl := <-c.ctrlQ:
			sb := buf.GetCap(packet.ControlHeaderSize + len(ctl.Body))
			sb.B = ctl.Marshal(sb.B)
			c.stats.controlSent.Add(1)
			if err := c.ctrl.SendBuf(sb); err != nil {
				go c.Close()
				return
			}
		case <-c.closedCh:
			return
		}
	}
}

// ctrlRecvThread reads the control connection and dispatches: flow
// control updates go to the Flow Control machinery, acknowledgments to
// the waiting Error Control session (the Control Receive Thread).
func (c *Connection) ctrlRecvThread() {
	defer c.wg.Done()
	for {
		b, err := c.ctrl.RecvBuf()
		if err != nil {
			// Control transport death is connection death: propagate,
			// as the Receive Thread does for the data connection.
			go c.Close()
			return
		}
		c.demuxControl(b)
		b.Release()
	}
}

// demuxControl parses and routes one control packet out of the pooled
// receive buffer b. The body stays aliased to b throughout: routing
// either consumes it synchronously on this goroutine (credits, rate
// and window updates, pings) or hands the waiting sender a retained
// reference (buf.Handoff) alongside the event. This is the single
// demultiplex point shared by the control-path receive loop and the
// in-band data-path receive loop, which used to duplicate a defensive
// body copy here.
func (c *Connection) demuxControl(b *buf.Buffer) {
	ctl, err := packet.UnmarshalControl(b.B)
	if err != nil {
		return
	}
	c.routeControl(ctl, b)
}

// routeControl dispatches a parsed control packet whose body aliases
// the pooled buffer ref (nil when the body has heap lifetime). The
// caller keeps its reference to ref; routeControl retains it only for
// events that cross to another goroutine.
func (c *Connection) routeControl(ctl packet.Control, ref *buf.Buffer) {
	c.stats.controlReceived.Add(1)
	c.lastHeard.Store(time.Now().UnixNano())
	switch ctl.Type {
	case packet.CtrlPing:
		c.enqueueCtrl(packet.Control{Type: packet.CtrlPong, ConnID: c.id})
	case packet.CtrlPong:
		// lastHeard already refreshed; nothing else to do.
	case packet.CtrlCredit, packet.CtrlCreditGrant, packet.CtrlRate, packet.CtrlWinAck:
		c.flowSend().OnControl(ctl)
	case packet.CtrlStreamGrant, packet.CtrlStreamOpen, packet.CtrlStreamClose:
		c.routeStreamCtrl(ctl)
	case packet.CtrlAck, packet.CtrlNack:
		// The deposit stays under c.mu so a completing sender can
		// delete its waiter and then drain the channel without racing a
		// late deposit (the channel is buffered; the send never blocks).
		c.mu.Lock()
		if w := c.waiters[ctl.SessionID]; w != nil {
			ev := ctrlEvent{ctl: ctl}
			if ref != nil {
				ev.ref = ref.Handoff()
			}
			select {
			case w <- ev:
			default:
				// The session is busy processing a previous ack; dropping
				// this one is safe — the sender's timer recovers.
				ev.release()
			}
		}
		c.mu.Unlock()
	}
}

// ---------------------------------------------------------------------------

// LastTrace returns the most recent instrumented send breakdown, or nil.
func (c *Connection) LastTrace() *SendTrace { return c.lastTrace.Load() }

// SendInstrumented sends msg and captures the Table I stage breakdown.
// The connection must have Instrument enabled and use the threaded path.
func (c *Connection) SendInstrumented(msg []byte) (*SendTrace, error) {
	if c.opts.FastPath {
		return nil, ErrFastPathOnly
	}
	tr := newSendTrace()
	tr.stamp(&tr.tEnter)
	err := c.sendThreaded(msg, tr)
	tr.stamp(&tr.tExit)
	if err != nil {
		return nil, err
	}
	c.lastTrace.Store(tr)
	return tr, nil
}

// ImpairData applies programmable impairments to this side's data
// transport mid-run (see transport.Impair): packets sent from here are
// impaired from the next one onward. It reports false when the data
// transport has no simulated link (SCI).
func (c *Connection) ImpairData(imp netsim.Impairments) bool {
	return transport.Impair(c.data, imp)
}

// Close tears the connection down: both transport connections, the flow
// control state, and all four per-connection threads. Inbound sessions
// still incomplete at teardown are abandoned so the pooled receive
// buffers they retained return to their pools.
func (c *Connection) Close() error {
	c.closeOnce.Do(func() {
		close(c.closedCh)
		// Serialise against the lazy flow-control constructors: after
		// closedCh is closed and this section ran, any sender/receiver
		// that exists — or is built later — has been Closed (the
		// constructors self-close when they observe closedCh).
		c.mu.Lock()
		fcs := c.fcSend.Load()
		fcr := c.fcRecv.Load()
		c.mu.Unlock()
		if fcs != nil {
			(*fcs).Close()
		}
		if fcr != nil {
			(*fcr).Close()
		}
		c.data.Close()
		c.ctrl.Close()
		c.wg.Wait()
		if sc := c.sh; sc != nil {
			// Pumps have exited (wg). Deregister and barrier against
			// the cycle that may still be dispatching our packets; the
			// closed transports guarantee no new ones can surface. Then
			// drain the pump channels' pooled buffers and reap.
			sc.shard.unregister(c)
			sc.drainInbound()
			c.reapSessions()
			c.reapStreams()
			return
		}
		if c.opts.FastPath {
			// No threads to join; a fast-path Recv may still be inside
			// the session machinery (possibly the very caller running
			// this Close after a transport error). Reap from a fresh
			// goroutine once the receive procedure lock frees — the
			// closed transports unblock it promptly.
			go func() {
				c.fastRecvMu.Lock()
				defer c.fastRecvMu.Unlock()
				c.reapSessions()
				c.reapStreams()
			}()
		} else {
			// The receive threads have exited; nothing touches the
			// session table concurrently anymore.
			c.reapSessions()
			c.reapStreams()
		}
	})
	return nil
}

// reapSessions abandons inbound sessions still incomplete at teardown,
// releasing the pooled receive buffers their reassembly retained.
func (c *Connection) reapSessions() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for id, rs := range c.sessions {
		if !rs.delivered {
			rs.rcv.Abandon()
		}
		delete(c.sessions, id)
		errctl.Recycle(rs.rcv)
	}
	c.sessAge = nil
}
