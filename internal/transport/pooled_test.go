package transport

import (
	"bytes"
	"testing"
	"time"

	"ncs/internal/buf"
)

// TestPooledRoundTripAllKinds drives the SendBuf → RecvBuf pipeline on
// every interface kind, checking contents and that the caller-owned
// receive buffer releases cleanly.
func TestPooledRoundTripAllKinds(t *testing.T) {
	for _, k := range allKinds() {
		t.Run(k.String(), func(t *testing.T) {
			a, b, cleanup, err := NewPair(PairConfig{Kind: k})
			if err != nil {
				t.Fatal(err)
			}
			defer cleanup()

			for _, n := range []int{0, 1, 4096, 60000} {
				sb := buf.Get(n)
				for i := range sb.B {
					sb.B[i] = byte(i)
				}
				want := append([]byte(nil), sb.B...)
				if err := a.SendBuf(sb); err != nil { // consumes sb
					t.Fatalf("SendBuf(%d): %v", n, err)
				}
				rb, err := b.RecvBuf()
				if err != nil {
					t.Fatalf("RecvBuf(%d): %v", n, err)
				}
				if !bytes.Equal(rb.B, want) {
					t.Fatalf("size %d: payload mismatch (got %d bytes)", n, rb.Len())
				}
				rb.Release()
			}
		})
	}
}

// TestSendBatchPreservesBoundaries checks that a coalesced batch still
// arrives as distinct packets, in order, on every interface kind.
func TestSendBatchPreservesBoundaries(t *testing.T) {
	for _, k := range allKinds() {
		t.Run(k.String(), func(t *testing.T) {
			a, b, cleanup, err := NewPair(PairConfig{Kind: k})
			if err != nil {
				t.Fatal(err)
			}
			defer cleanup()

			const n = 9
			batch := make([]*buf.Buffer, 0, n)
			for i := 0; i < n; i++ {
				sb := buf.Get(100 + i) // distinct sizes mark the boundaries
				for j := range sb.B {
					sb.B[j] = byte(i)
				}
				batch = append(batch, sb)
			}
			if err := a.SendBatch(batch); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < n; i++ {
				rb, err := b.RecvBufTimeout(5 * time.Second)
				if err != nil {
					t.Fatalf("packet %d: %v", i, err)
				}
				if rb.Len() != 100+i {
					t.Fatalf("packet %d: len %d, want %d", i, rb.Len(), 100+i)
				}
				for _, c := range rb.B {
					if c != byte(i) {
						t.Fatalf("packet %d: corrupted byte %d", i, c)
					}
				}
				rb.Release()
			}
		})
	}
}

// TestHPIZeroCopyHandoff verifies the HPI claim: the storage written by
// the sender is the very storage the receiver reads — no copy at any
// layer in between.
func TestHPIZeroCopyHandoff(t *testing.T) {
	a, b := HPIPair()
	defer a.Close()
	defer b.Close()

	sb := buf.Get(64)
	p := &sb.B[0]
	if err := a.SendBuf(sb); err != nil {
		t.Fatal(err)
	}
	rb, err := b.RecvBuf()
	if err != nil {
		t.Fatal(err)
	}
	if &rb.B[0] != p {
		t.Fatal("HPI SendBuf→RecvBuf copied the packet; expected zero-copy handoff")
	}
	rb.Release()
}

// TestChunkedPooledRoundTrip drives the pooled path through the chunk
// reassembly wrapper.
func TestChunkedPooledRoundTrip(t *testing.T) {
	a, b := HPIPair()
	ca := Chunked(a, 100)
	cb := Chunked(b, 100)
	defer ca.Close()
	defer cb.Close()

	sb := buf.Get(1000)
	for i := range sb.B {
		sb.B[i] = byte(i % 251)
	}
	want := append([]byte(nil), sb.B...)
	if err := ca.SendBuf(sb); err != nil {
		t.Fatal(err)
	}
	rb, err := cb.RecvBuf()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rb.B, want) {
		t.Fatal("chunked pooled round trip corrupted the packet")
	}
	rb.Release()
}
