package transport

import (
	"bytes"
	"sync"
	"testing"

	"ncs/internal/atm"
	"ncs/internal/netsim"
)

func allKinds() []Kind { return []Kind{SCI, ACI, HPI} }

func TestPairRoundTripAllKinds(t *testing.T) {
	for _, k := range allKinds() {
		t.Run(k.String(), func(t *testing.T) {
			a, b, cleanup, err := NewPair(PairConfig{Kind: k})
			if err != nil {
				t.Fatal(err)
			}
			defer cleanup()

			msgs := [][]byte{
				[]byte(""),
				[]byte("x"),
				bytes.Repeat([]byte("abc"), 1000),
				make([]byte, 60000),
			}
			for i, m := range msgs {
				if err := a.Send(m); err != nil {
					t.Fatalf("send %d: %v", i, err)
				}
				got, err := b.Recv()
				if err != nil {
					t.Fatalf("recv %d: %v", i, err)
				}
				if !bytes.Equal(got, m) {
					t.Fatalf("msg %d: got %d bytes, want %d", i, len(got), len(m))
				}
			}
		})
	}
}

func TestPacketBoundariesPreserved(t *testing.T) {
	for _, k := range allKinds() {
		t.Run(k.String(), func(t *testing.T) {
			a, b, cleanup, err := NewPair(PairConfig{Kind: k})
			if err != nil {
				t.Fatal(err)
			}
			defer cleanup()

			for i := 1; i <= 20; i++ {
				if err := a.Send(bytes.Repeat([]byte{byte(i)}, i)); err != nil {
					t.Fatal(err)
				}
			}
			for i := 1; i <= 20; i++ {
				p, err := b.Recv()
				if err != nil {
					t.Fatal(err)
				}
				if len(p) != i || p[0] != byte(i) {
					t.Fatalf("packet %d: len=%d first=%d", i, len(p), p[0])
				}
			}
		})
	}
}

func TestDuplexAllKinds(t *testing.T) {
	for _, k := range allKinds() {
		t.Run(k.String(), func(t *testing.T) {
			a, b, cleanup, err := NewPair(PairConfig{Kind: k})
			if err != nil {
				t.Fatal(err)
			}
			defer cleanup()

			if err := a.Send([]byte("ping")); err != nil {
				t.Fatal(err)
			}
			if p, _ := b.Recv(); string(p) != "ping" {
				t.Fatalf("got %q", p)
			}
			if err := b.Send([]byte("pong")); err != nil {
				t.Fatal(err)
			}
			if p, _ := a.Recv(); string(p) != "pong" {
				t.Fatalf("got %q", p)
			}
		})
	}
}

func TestCloseUnblocksRecv(t *testing.T) {
	for _, k := range allKinds() {
		t.Run(k.String(), func(t *testing.T) {
			a, b, cleanup, err := NewPair(PairConfig{Kind: k})
			if err != nil {
				t.Fatal(err)
			}
			defer cleanup()

			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := b.Recv(); err == nil {
					t.Error("Recv returned nil error after peer close")
				}
			}()
			a.Close()
			// For SCI the peer sees EOF; for ACI/HPI the pipe closes.
			b.Close()
			wg.Wait()
		})
	}
}

func TestKindProperties(t *testing.T) {
	if !SCI.Reliable() || !HPI.Reliable() {
		t.Error("SCI and HPI must be reliable")
	}
	if ACI.Reliable() {
		t.Error("ACI must be unreliable (NCS provides its own error control)")
	}
	if SCI.String() != "SCI" || ACI.String() != "ACI" || HPI.String() != "HPI" {
		t.Error("Kind.String misbehaving")
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind String empty")
	}
}

func TestACIMaxPacket(t *testing.T) {
	a, b, cleanup, err := NewPair(PairConfig{Kind: ACI})
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	_ = b
	if a.MaxPacket() != atm.MaxFrameSize {
		t.Fatalf("ACI MaxPacket = %d, want %d", a.MaxPacket(), atm.MaxFrameSize)
	}
	if err := a.Send(make([]byte, atm.MaxFrameSize+1)); err == nil {
		t.Fatal("oversized ACI packet accepted")
	}
}

func TestACILossStats(t *testing.T) {
	a, b, cleanup, err := NewPair(PairConfig{
		Kind: ACI,
		QoS:  atm.QoS{CellLossRate: 0.5, Seed: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()

	// Multi-cell frames: partial cell loss leaves evidence (a frame that
	// fails CRC/length), unlike single-cell frames that vanish whole.
	for i := 0; i < 30; i++ {
		if err := a.Send(bytes.Repeat([]byte{byte(i)}, 500)); err != nil {
			t.Fatal(err)
		}
	}
	a.Close()
	for {
		if _, err := b.Recv(); err != nil {
			break
		}
	}
	dropped, ok := ACIStats(b)
	if !ok {
		t.Fatal("ACIStats not available on ACI conn")
	}
	if dropped == 0 {
		t.Fatal("expected frame drops at 50% cell loss")
	}
	if _, ok := ACIStats(a); !ok {
		t.Fatal("ACIStats should work on sender side too")
	}
}

func TestHPIPairWithParams(t *testing.T) {
	a, b := HPIPairWithParams(
		netsim.Params{LossRate: 1.0},
		netsim.Params{},
	)
	defer b.Close()
	for i := 0; i < 3; i++ {
		if err := a.Send([]byte("gone")); err != nil {
			t.Fatal(err)
		}
	}
	a.Close()
	if _, err := b.Recv(); err != ErrConnClosed {
		t.Fatalf("err = %v, want ErrConnClosed", err)
	}
}

func TestSendAfterCloseErrors(t *testing.T) {
	for _, k := range allKinds() {
		t.Run(k.String(), func(t *testing.T) {
			a, b, cleanup, err := NewPair(PairConfig{Kind: k})
			if err != nil {
				t.Fatal(err)
			}
			defer cleanup()
			_ = b
			a.Close()
			if err := a.Send([]byte("x")); err == nil {
				t.Fatal("Send after Close succeeded")
			}
		})
	}
}

func TestConcurrentSendersInterleave(t *testing.T) {
	for _, k := range allKinds() {
		t.Run(k.String(), func(t *testing.T) {
			a, b, cleanup, err := NewPair(PairConfig{Kind: k})
			if err != nil {
				t.Fatal(err)
			}
			defer cleanup()

			const senders, per = 4, 20
			var wg sync.WaitGroup
			for s := 0; s < senders; s++ {
				wg.Add(1)
				go func(s int) {
					defer wg.Done()
					payload := bytes.Repeat([]byte{byte(s + 1)}, 100)
					for i := 0; i < per; i++ {
						if err := a.Send(payload); err != nil {
							t.Errorf("send: %v", err)
							return
						}
					}
				}(s)
			}
			recvDone := make(chan struct{})
			go func() {
				defer close(recvDone)
				for i := 0; i < senders*per; i++ {
					p, err := b.Recv()
					if err != nil {
						t.Errorf("recv: %v", err)
						return
					}
					// Each packet must be internally consistent (no
					// interleaving of two senders' bytes).
					if len(p) != 100 {
						t.Errorf("packet len %d", len(p))
						return
					}
					for _, c := range p {
						if c != p[0] {
							t.Error("interleaved packet bytes")
							return
						}
					}
				}
			}()
			wg.Wait()
			<-recvDone
		})
	}
}
