//go:build !(linux && (amd64 || arm64))

// Portable batch I/O for the UDP transport: the graceful fallback for
// platforms without raw sendmmsg/recvmmsg access (darwin, windows,
// 32-bit linux). The interface is identical to the Linux file's, but
// each datagram is one blocking net.UDPConn syscall — sends copy the
// 8-byte header and payload into a reused scratch buffer, and receives
// return one datagram per recvBatch call. Functionally equivalent,
// just without the syscall amortisation; BatchSyscallsSupported()
// reports false so benches and CI skip the batched-throughput gate.

package transport

import (
	"net"

	"ncs/internal/buf"
)

const batchSyscallsSupported = false

// wireAddr is just the destination address on the portable path.
type wireAddr struct {
	addr *net.UDPAddr
}

func encodeWireAddr(a *net.UDPAddr) (wireAddr, error) {
	return wireAddr{addr: a}, nil
}

type batchIO struct {
	sock      *net.UDPConn
	connected bool
	scratch   []byte // header+payload staging, guarded by sendMu
}

func newBatchIO(sock *net.UDPConn, connected bool) (*batchIO, error) {
	return &batchIO{sock: sock, connected: connected}, nil
}

// sendBatch writes one datagram per syscall. Caller holds sendMu and
// releases the payloads.
func (io *batchIO) sendBatch(msgs []outMsg) error {
	for i := range msgs {
		m := &msgs[i]
		io.scratch = append(io.scratch[:0], m.hdr[:]...)
		if m.b != nil {
			io.scratch = append(io.scratch, m.b.B...)
		}
		var err error
		if m.to != nil {
			_, err = io.sock.WriteToUDP(io.scratch, m.to.addr)
		} else {
			_, err = io.sock.Write(io.scratch)
		}
		mUDPSendSyscalls.Inc()
		if err != nil {
			return err
		}
	}
	return nil
}

// recvBatch blocks for one datagram and stores it in slots[0].
func (io *batchIO) recvBatch(slots []*buf.Buffer, meta []recvMeta) (int, error) {
	n, _, flags, from, err := io.sock.ReadMsgUDP(slots[0].B, nil)
	mUDPRecvSyscalls.Inc()
	if err != nil {
		return 0, err
	}
	meta[0].n = n
	meta[0].trunc = flags&msgTruncFlag != 0
	if from != nil {
		meta[0].from = addrKeyFromUDP(from)
	} else {
		meta[0].from = addrKey{}
	}
	return 1, nil
}
