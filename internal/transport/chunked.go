package transport

import (
	"encoding/binary"
	"time"

	"ncs/internal/buf"
)

// chunkedConn splits every outbound packet into chunks of at most
// chunkSize bytes and reassembles inbound chunks back into whole
// packets. It models a protocol stack that accepts only small writes
// (the SunOS-era TCP path that p4 and MPICH rode): layered under a
// platform tax, every chunk pays its own per-call costs, which is
// exactly the behaviour behind the SUN-4 degradation in Figure 12.
type chunkedConn struct {
	inner Conn
	chunk int

	partial *buf.Buffer // inbound reassembly (owned until handed out)
}

var _ Conn = (*chunkedConn)(nil)

const chunkHeaderSize = 5 // 4-byte remaining-bytes counter + last flag

// Chunked wraps conn so packets are carried as chunkSize-byte segments.
// Both endpoints of a link must agree on using Chunked (the chunk sizes
// may differ). chunkSize must be positive.
func Chunked(conn Conn, chunkSize int) Conn {
	if chunkSize <= 0 {
		chunkSize = 1460
	}
	return &chunkedConn{inner: conn, chunk: chunkSize}
}

func (c *chunkedConn) Send(p []byte) error {
	total := len(p)
	if total == 0 {
		return c.sendChunk(nil, true)
	}
	for off := 0; off < total; off += c.chunk {
		hi := off + c.chunk
		if hi > total {
			hi = total
		}
		if err := c.sendChunk(p[off:hi], hi == total); err != nil {
			return err
		}
	}
	return nil
}

// SendBuf chunks the packet through pooled chunk buffers, then
// releases it.
func (c *chunkedConn) SendBuf(b *buf.Buffer) error {
	err := c.Send(b.B)
	b.Release()
	return err
}

// SendBatch forwards packet by packet: the chunk framing already
// interleaves per-chunk costs, which is the behaviour this wrapper
// exists to model, so batching below it would be self-defeating.
func (c *chunkedConn) SendBatch(bs []*buf.Buffer) error {
	return sendBatchSeq(c.SendBuf, bs)
}

// sendChunk stages one chunk in a pooled buffer and hands it down.
func (c *chunkedConn) sendChunk(body []byte, last bool) error {
	cb := buf.Get(chunkHeaderSize + len(body))
	binary.BigEndian.PutUint32(cb.B, uint32(len(body)))
	cb.B[4] = 0
	if last {
		cb.B[4] = 1
	}
	copy(cb.B[chunkHeaderSize:], body)
	return c.inner.SendBuf(cb)
}

func (c *chunkedConn) Recv() ([]byte, error) {
	b, err := c.RecvBuf()
	if err != nil {
		return nil, err
	}
	return b.TakeBytes(), nil
}

// RecvBuf reassembles chunks into a pooled buffer owned by the caller.
func (c *chunkedConn) RecvBuf() (*buf.Buffer, error) {
	for {
		raw, err := c.inner.RecvBuf()
		if err != nil {
			return nil, err
		}
		done, msg, err := c.push(raw)
		if err != nil {
			return nil, err
		}
		if done {
			return msg, nil
		}
	}
}

func (c *chunkedConn) RecvTimeout(d time.Duration) ([]byte, error) {
	b, err := c.RecvBufTimeout(d)
	if err != nil {
		return nil, err
	}
	return b.TakeBytes(), nil
}

func (c *chunkedConn) RecvBufTimeout(d time.Duration) (*buf.Buffer, error) {
	deadline := time.Now().Add(d)
	for {
		remain := time.Until(deadline)
		if remain <= 0 {
			return nil, ErrRecvTimeout
		}
		raw, err := c.inner.RecvBufTimeout(remain)
		if err != nil {
			return nil, err
		}
		done, msg, err := c.push(raw)
		if err != nil {
			return nil, err
		}
		if done {
			return msg, nil
		}
	}
}

// push consumes raw (releasing it) after copying its body into the
// pooled reassembly buffer; on the final chunk it hands the assembled
// packet to the caller.
func (c *chunkedConn) push(raw *buf.Buffer) (bool, *buf.Buffer, error) {
	defer raw.Release()
	if raw.Len() < chunkHeaderSize {
		return false, nil, ErrConnClosed
	}
	n := binary.BigEndian.Uint32(raw.B)
	last := raw.B[4] == 1
	body := raw.B[chunkHeaderSize:]
	if int(n) <= len(body) {
		body = body[:n]
	}
	if c.partial == nil {
		// Size for the pipeline's common packet (a 4 KB SDU plus
		// header) rather than one chunk: sizing by len(body) would pick
		// the smallest tier and force every multi-chunk packet to
		// regrow off-pool.
		c.partial = buf.GetCap(buf.DefaultSDUStage)
	}
	c.partial.B = append(c.partial.B, body...)
	if !last {
		return false, nil, nil
	}
	msg := c.partial
	c.partial = nil
	return true, msg, nil
}

// Close closes the inner connection. A partially reassembled packet is
// left to the garbage collector rather than released here: the receive
// loop may still be touching it, and an unreleased buffer is merely a
// pool miss, never a leak.
func (c *chunkedConn) Close() error { return c.inner.Close() }

func (c *chunkedConn) MaxPacket() int { return 0 }

func (c *chunkedConn) Kind() Kind { return c.inner.Kind() }
