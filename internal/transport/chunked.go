package transport

import (
	"encoding/binary"
	"time"
)

// chunkedConn splits every outbound packet into chunks of at most
// chunkSize bytes and reassembles inbound chunks back into whole
// packets. It models a protocol stack that accepts only small writes
// (the SunOS-era TCP path that p4 and MPICH rode): layered under a
// platform tax, every chunk pays its own per-call costs, which is
// exactly the behaviour behind the SUN-4 degradation in Figure 12.
type chunkedConn struct {
	inner Conn
	chunk int

	partial []byte // inbound reassembly
}

var _ Conn = (*chunkedConn)(nil)

const chunkHeaderSize = 5 // 4-byte remaining-bytes counter + last flag

// Chunked wraps conn so packets are carried as chunkSize-byte segments.
// Both endpoints of a link must agree on using Chunked (the chunk sizes
// may differ). chunkSize must be positive.
func Chunked(conn Conn, chunkSize int) Conn {
	if chunkSize <= 0 {
		chunkSize = 1460
	}
	return &chunkedConn{inner: conn, chunk: chunkSize}
}

func (c *chunkedConn) Send(p []byte) error {
	total := len(p)
	if total == 0 {
		return c.sendChunk(nil, true)
	}
	for off := 0; off < total; off += c.chunk {
		hi := off + c.chunk
		if hi > total {
			hi = total
		}
		if err := c.sendChunk(p[off:hi], hi == total); err != nil {
			return err
		}
	}
	return nil
}

func (c *chunkedConn) sendChunk(body []byte, last bool) error {
	buf := make([]byte, chunkHeaderSize+len(body))
	binary.BigEndian.PutUint32(buf, uint32(len(body)))
	if last {
		buf[4] = 1
	}
	copy(buf[chunkHeaderSize:], body)
	return c.inner.Send(buf)
}

func (c *chunkedConn) Recv() ([]byte, error) {
	for {
		raw, err := c.inner.Recv()
		if err != nil {
			return nil, err
		}
		done, msg, err := c.push(raw)
		if err != nil {
			return nil, err
		}
		if done {
			return msg, nil
		}
	}
}

func (c *chunkedConn) RecvTimeout(d time.Duration) ([]byte, error) {
	deadline := time.Now().Add(d)
	for {
		remain := time.Until(deadline)
		if remain <= 0 {
			return nil, ErrRecvTimeout
		}
		raw, err := c.inner.RecvTimeout(remain)
		if err != nil {
			return nil, err
		}
		done, msg, err := c.push(raw)
		if err != nil {
			return nil, err
		}
		if done {
			return msg, nil
		}
	}
}

func (c *chunkedConn) push(raw []byte) (bool, []byte, error) {
	if len(raw) < chunkHeaderSize {
		return false, nil, ErrConnClosed
	}
	n := binary.BigEndian.Uint32(raw)
	last := raw[4] == 1
	body := raw[chunkHeaderSize:]
	if int(n) <= len(body) {
		body = body[:n]
	}
	c.partial = append(c.partial, body...)
	if !last {
		return false, nil, nil
	}
	msg := c.partial
	c.partial = nil
	return true, msg, nil
}

func (c *chunkedConn) Close() error { return c.inner.Close() }

func (c *chunkedConn) MaxPacket() int { return 0 }

func (c *chunkedConn) Kind() Kind { return c.inner.Kind() }
