//go:build linux && arm64

package transport

// The stdlib syscall number tables were frozen before sendmmsg(2)
// landed (Linux 3.0), so the batch path carries its own numbers.
const (
	sysSENDMMSG = 269
	sysRECVMMSG = 243
)
