//go:build unix

package transport

import "syscall"

// msgTruncFlag marks a datagram that overflowed its receive slot in
// ReadMsgUDP's returned flags (unused on the Linux batch path, which
// reads MSG_TRUNC from the per-message mmsghdr flags directly).
const msgTruncFlag = syscall.MSG_TRUNC

// errConnRefused is the ICMP port-unreachable errno a connected UDP
// socket surfaces when its peer's socket has closed; the transport
// treats it as teardown, not failure.
var errConnRefused error = syscall.ECONNREFUSED
