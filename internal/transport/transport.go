// Package transport provides the three NCS application communication
// interfaces behind a single abstraction:
//
//   - SCI (Socket Communication Interface): TCP with length-prefix
//     framing. Portable; flow and error control are inherited from
//     TCP/IP, so NCS connections over SCI normally bypass the Flow
//     Control and Error Control Threads (§3.1, final paragraph).
//   - ACI (ATM Communication Interface): AAL5 frames over a simulated
//     ATM virtual circuit with per-connection QoS. No built-in flow or
//     error control — precisely why NCS supplies its own, selectable
//     per connection.
//   - HPI (High Performance Interface): an in-process, trap-style
//     interface with minimal per-message overhead, standing in for the
//     modified-firmware path the paper targets at tightly-coupled
//     homogeneous clusters.
//
// A Conn is datagram-oriented: packet boundaries are preserved, because
// the NCS data plane exchanges discrete SDUs.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"ncs/internal/atm"
	"ncs/internal/netsim"
)

// Kind identifies which communication interface a Conn uses.
type Kind int

// The three NCS application communication interfaces.
const (
	SCI Kind = iota + 1
	ACI
	HPI
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case SCI:
		return "SCI"
	case ACI:
		return "ACI"
	case HPI:
		return "HPI"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Reliable reports whether the interface provides loss-free, ordered
// delivery by itself (true only for SCI/TCP and the in-process HPI).
// Connections over unreliable interfaces need NCS error control.
func (k Kind) Reliable() bool { return k == SCI || k == HPI }

// Errors returned by Conn operations.
var (
	// ErrConnClosed is returned by operations on a closed Conn.
	ErrConnClosed = errors.New("transport: connection closed")
	// ErrRecvTimeout is returned by RecvTimeout when the deadline passes.
	ErrRecvTimeout = errors.New("transport: receive timeout")
)

// Conn is a duplex, packet-boundary-preserving connection.
type Conn interface {
	// Send transmits one packet. The implementation copies p if it
	// needs to retain it.
	Send(p []byte) error
	// Recv blocks for the next packet.
	Recv() ([]byte, error)
	// RecvTimeout is Recv with a deadline; it returns ErrRecvTimeout if
	// no packet arrives in time. On SCI a timeout that lands mid-packet
	// desynchronises the stream and surfaces as a hard error; use
	// generous deadlines on SCI.
	RecvTimeout(d time.Duration) ([]byte, error)
	// Close releases the connection. Blocked Recv calls return an error.
	Close() error
	// MaxPacket is the largest packet Send accepts; 0 means unlimited.
	MaxPacket() int
	// Kind reports the interface type.
	Kind() Kind
}

// Listener accepts inbound connections for one interface kind.
type Listener interface {
	Accept() (Conn, error)
	Close() error
	// Addr returns the listener's address in a form Dial understands.
	Addr() string
}

// ---------------------------------------------------------------------------
// SCI: TCP with 4-byte big-endian length prefixes.

type sciConn struct {
	c net.Conn

	readMu  sync.Mutex
	writeMu sync.Mutex
	lenBuf  [4]byte
}

var _ Conn = (*sciConn)(nil)

// DialSCI connects to a ListenSCI address ("host:port").
func DialSCI(addr string) (Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("sci dial %s: %w", addr, err)
	}
	if tc, ok := c.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
	return &sciConn{c: c}, nil
}

type sciListener struct{ l net.Listener }

var _ Listener = (*sciListener)(nil)

// ListenSCI listens on a TCP address; pass "127.0.0.1:0" for an
// ephemeral local port.
func ListenSCI(addr string) (Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("sci listen %s: %w", addr, err)
	}
	return &sciListener{l: l}, nil
}

func (l *sciListener) Accept() (Conn, error) {
	c, err := l.l.Accept()
	if err != nil {
		return nil, err
	}
	if tc, ok := c.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
	return &sciConn{c: c}, nil
}

func (l *sciListener) Close() error { return l.l.Close() }
func (l *sciListener) Addr() string { return l.l.Addr().String() }

func (s *sciConn) Send(p []byte) error {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(p)))
	if _, err := s.c.Write(lenBuf[:]); err != nil {
		return s.mapErr(err)
	}
	if _, err := s.c.Write(p); err != nil {
		return s.mapErr(err)
	}
	return nil
}

func (s *sciConn) Recv() ([]byte, error) {
	s.readMu.Lock()
	defer s.readMu.Unlock()
	if _, err := io.ReadFull(s.c, s.lenBuf[:]); err != nil {
		return nil, s.mapErr(err)
	}
	n := binary.BigEndian.Uint32(s.lenBuf[:])
	p := make([]byte, n)
	if _, err := io.ReadFull(s.c, p); err != nil {
		return nil, s.mapErr(err)
	}
	return p, nil
}

func (s *sciConn) RecvTimeout(d time.Duration) ([]byte, error) {
	s.readMu.Lock()
	defer s.readMu.Unlock()
	if err := s.c.SetReadDeadline(time.Now().Add(d)); err != nil {
		return nil, s.mapErr(err)
	}
	defer s.c.SetReadDeadline(time.Time{})

	n0, err := io.ReadFull(s.c, s.lenBuf[:])
	if err != nil {
		if n0 == 0 && isTimeout(err) {
			return nil, ErrRecvTimeout
		}
		return nil, s.mapErr(err)
	}
	n := binary.BigEndian.Uint32(s.lenBuf[:])
	p := make([]byte, n)
	if _, err := io.ReadFull(s.c, p); err != nil {
		// A timeout here means the stream is desynchronised; surface it
		// as a hard error rather than ErrRecvTimeout.
		return nil, s.mapErr(err)
	}
	return p, nil
}

func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

func (s *sciConn) Close() error   { return s.c.Close() }
func (s *sciConn) MaxPacket() int { return 0 }
func (s *sciConn) Kind() Kind     { return SCI }
func (s *sciConn) mapErr(err error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
		return ErrConnClosed
	}
	return err
}

// ---------------------------------------------------------------------------
// ACI: AAL5 frames over a simulated ATM VC.

type aciConn struct{ vc *atm.VC }

var _ Conn = (*aciConn)(nil)

// NewACI wraps an established ATM virtual circuit as a Conn.
func NewACI(vc *atm.VC) Conn { return &aciConn{vc: vc} }

func (a *aciConn) Send(p []byte) error {
	if err := a.vc.SendFrame(p); err != nil {
		if errors.Is(err, atm.ErrVCClosed) {
			return ErrConnClosed
		}
		return err
	}
	return nil
}

func (a *aciConn) Recv() ([]byte, error) {
	p, err := a.vc.RecvFrame()
	if err != nil {
		if errors.Is(err, atm.ErrVCClosed) {
			return nil, ErrConnClosed
		}
		return nil, err
	}
	return p, nil
}

func (a *aciConn) RecvTimeout(d time.Duration) ([]byte, error) {
	p, err := a.vc.RecvFrameTimeout(d)
	if err != nil {
		switch {
		case errors.Is(err, atm.ErrRecvTimeout):
			return nil, ErrRecvTimeout
		case errors.Is(err, atm.ErrVCClosed):
			return nil, ErrConnClosed
		}
		return nil, err
	}
	return p, nil
}

func (a *aciConn) Close() error   { return a.vc.Close() }
func (a *aciConn) MaxPacket() int { return atm.MaxFrameSize }
func (a *aciConn) Kind() Kind     { return ACI }

// VC exposes the underlying circuit (for QoS inspection and loss stats).
func (a *aciConn) VC() *atm.VC { return a.vc }

// ACIStats extracts frame-drop statistics if c is an ACI connection.
func ACIStats(c Conn) (dropped int, ok bool) {
	a, isACI := c.(*aciConn)
	if !isACI {
		return 0, false
	}
	return a.vc.FramesDropped(), true
}

// ---------------------------------------------------------------------------
// HPI: in-process shared-memory style interface.

type hpiConn struct{ ep *netsim.Endpoint }

var _ Conn = (*hpiConn)(nil)

// HPIPair returns two connected HPI endpoints. The underlying channel is
// an in-process queue with no simulated bandwidth or delay, modelling a
// trap/firmware interface on a tightly coupled cluster.
func HPIPair() (Conn, Conn) {
	a, b := netsim.Pipe(netsim.LoopbackParams(), netsim.LoopbackParams())
	return &hpiConn{ep: a}, &hpiConn{ep: b}
}

// HPIPairWithParams returns a connected HPI pair whose two directions
// use the given link parameters — useful for tests that need loss or
// bounded buffers without the ATM cell machinery.
func HPIPairWithParams(aToB, bToA netsim.Params) (Conn, Conn) {
	a, b := netsim.Pipe(aToB, bToA)
	return &hpiConn{ep: a}, &hpiConn{ep: b}
}

func (h *hpiConn) Send(p []byte) error {
	if err := h.ep.Send(p); err != nil {
		return ErrConnClosed
	}
	return nil
}

func (h *hpiConn) Recv() ([]byte, error) {
	p, err := h.ep.Recv()
	if err != nil {
		return nil, ErrConnClosed
	}
	return p, nil
}

func (h *hpiConn) RecvTimeout(d time.Duration) ([]byte, error) {
	p, err := h.ep.RecvTimeout(d)
	if err != nil {
		if errors.Is(err, netsim.ErrTimeout) {
			return nil, ErrRecvTimeout
		}
		return nil, ErrConnClosed
	}
	return p, nil
}

func (h *hpiConn) Close() error   { return h.ep.Close() }
func (h *hpiConn) MaxPacket() int { return 0 }
func (h *hpiConn) Kind() Kind     { return HPI }
