// Package transport provides the three NCS application communication
// interfaces behind a single abstraction:
//
//   - SCI (Socket Communication Interface): TCP with length-prefix
//     framing. Portable; flow and error control are inherited from
//     TCP/IP, so NCS connections over SCI normally bypass the Flow
//     Control and Error Control Threads (§3.1, final paragraph).
//   - ACI (ATM Communication Interface): AAL5 frames over a simulated
//     ATM virtual circuit with per-connection QoS. No built-in flow or
//     error control — precisely why NCS supplies its own, selectable
//     per connection.
//   - HPI (High Performance Interface): an in-process, trap-style
//     interface with minimal per-message overhead, standing in for the
//     modified-firmware path the paper targets at tightly-coupled
//     homogeneous clusters.
//
// A Conn is datagram-oriented: packet boundaries are preserved, because
// the NCS data plane exchanges discrete SDUs.
//
// # Buffer ownership
//
// The pooled paths (SendBuf, SendBatch, RecvBuf, RecvBufTimeout) move
// packets in reference-counted buf.Buffers so the hot pipeline never
// copies at a layer boundary. The ownership contract, repeated from
// package buf:
//
//   - SendBuf and SendBatch CONSUME one reference per buffer: the
//     transport releases it once the wire has accepted the bytes (or
//     the send failed). Callers that need the contents afterwards must
//     Retain first.
//   - RecvBuf and RecvBufTimeout return a buffer the caller OWNS: the
//     caller must Release it when every slice aliasing it is dropped.
//
// The []byte paths (Send, Recv, RecvTimeout) remain for callers
// outside the hot pipeline; they stage through the same pools where
// possible but return heap-lifetime slices.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"ncs/internal/atm"
	"ncs/internal/buf"
	"ncs/internal/netsim"
)

// Kind identifies which communication interface a Conn uses.
type Kind int

// The three NCS application communication interfaces, plus the
// real-wire UDP interface (udp.go), which moves the same packets over
// kernel sockets instead of the in-process simulator.
const (
	SCI Kind = iota + 1
	ACI
	HPI
	UDP
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case SCI:
		return "SCI"
	case ACI:
		return "ACI"
	case HPI:
		return "HPI"
	case UDP:
		return "UDP"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Reliable reports whether the interface provides loss-free, ordered
// delivery by itself (true only for SCI/TCP and the in-process HPI).
// Connections over unreliable interfaces need NCS error control.
func (k Kind) Reliable() bool { return k == SCI || k == HPI }

// Errors returned by Conn operations.
var (
	// ErrConnClosed is returned by operations on a closed Conn.
	ErrConnClosed = errors.New("transport: connection closed")
	// ErrRecvTimeout is returned by RecvTimeout when the deadline passes.
	ErrRecvTimeout = errors.New("transport: receive timeout")
)

// Conn is a duplex, packet-boundary-preserving connection.
type Conn interface {
	// Send transmits one packet. The implementation copies p if it
	// needs to retain it.
	Send(p []byte) error
	// SendBuf transmits one packet from a pooled buffer, consuming the
	// caller's reference (see the package comment for ownership rules).
	SendBuf(b *buf.Buffer) error
	// SendBatch transmits the packets in order, consuming one reference
	// each — even on error, every buffer is released. Packet boundaries
	// are preserved; implementations with vectored I/O (SCI) coalesce
	// the batch into a single writev so queued SDUs share the syscall
	// and framing cost.
	SendBatch(bs []*buf.Buffer) error
	// Recv blocks for the next packet.
	Recv() ([]byte, error)
	// RecvBuf blocks for the next packet, staged in a pooled buffer the
	// caller owns and must Release.
	RecvBuf() (*buf.Buffer, error)
	// RecvTimeout is Recv with a deadline; it returns ErrRecvTimeout if
	// no packet arrives in time. On SCI a timeout that lands mid-packet
	// desynchronises the stream and surfaces as a hard error; use
	// generous deadlines on SCI.
	RecvTimeout(d time.Duration) ([]byte, error)
	// RecvBufTimeout is RecvBuf with a deadline (same SCI caveat as
	// RecvTimeout).
	RecvBufTimeout(d time.Duration) (*buf.Buffer, error)
	// Close releases the connection. Blocked Recv calls return an error.
	Close() error
	// MaxPacket is the largest packet Send accepts; 0 means unlimited.
	MaxPacket() int
	// Kind reports the interface type.
	Kind() Kind
}

// Poller is the optional readiness interface a Conn may implement for
// reactor-style runtimes: a non-blocking receive plus a doorbell hook,
// so one event loop can demultiplex arrivals across many connections
// without parking a goroutine in RecvBuf per connection. HPI implements
// it natively (the in-process link exposes its arrival queue); SCI
// rides a kernel socket and ACI a cell-level reassembler, so neither
// does — runtimes fall back to a pump goroutine there.
type Poller interface {
	// TryRecvBuf returns the next packet without blocking: (nil, nil)
	// when none is available yet, ErrConnClosed once the connection is
	// closed and drained. The returned buffer follows RecvBuf's
	// ownership rule (caller owns, must Release).
	TryRecvBuf() (*buf.Buffer, error)
	// SetRecvNotify registers fn to run whenever a packet may have
	// become available and when the connection dies. fn must not block
	// (a non-blocking doorbell send is the intended body); it fires
	// once immediately on registration. nil clears the hook.
	SetRecvNotify(fn func())
}

// AsPoller reports the Poller behind c, if it has one.
func AsPoller(c Conn) (Poller, bool) {
	p, ok := c.(Poller)
	return p, ok
}

// releaseAll drops one reference from every buffer of a batch; send
// paths use it to uphold SendBatch's consume-even-on-error contract.
func releaseAll(bs []*buf.Buffer) {
	for _, b := range bs {
		b.Release()
	}
}

// sendBatchSeq is the sequential SendBatch fallback for transports
// without vectored I/O: each packet goes through send (which consumes
// its reference); on error the unsent remainder is released so the
// consume-even-on-error contract holds in exactly one place.
func sendBatchSeq(send func(*buf.Buffer) error, bs []*buf.Buffer) error {
	for i, b := range bs {
		if err := send(b); err != nil {
			releaseAll(bs[i+1:])
			return err
		}
	}
	return nil
}

// Listener accepts inbound connections for one interface kind.
type Listener interface {
	Accept() (Conn, error)
	Close() error
	// Addr returns the listener's address in a form Dial understands.
	Addr() string
}

// ---------------------------------------------------------------------------
// SCI: TCP with 4-byte big-endian length prefixes.

type sciConn struct {
	c net.Conn

	readMu  sync.Mutex
	writeMu sync.Mutex
	lenBuf  [4]byte

	// Batch-write scratch, reused under writeMu: the length prefixes
	// and the iovec for SendBatch's writev.
	prefixes []byte
	vec      net.Buffers
}

var _ Conn = (*sciConn)(nil)

// DialSCI connects to a ListenSCI address ("host:port").
func DialSCI(addr string) (Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("sci dial %s: %w", addr, err)
	}
	if tc, ok := c.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
	return &sciConn{c: c}, nil
}

type sciListener struct{ l net.Listener }

var _ Listener = (*sciListener)(nil)

// ListenSCI listens on a TCP address; pass "127.0.0.1:0" for an
// ephemeral local port.
func ListenSCI(addr string) (Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("sci listen %s: %w", addr, err)
	}
	return &sciListener{l: l}, nil
}

func (l *sciListener) Accept() (Conn, error) {
	c, err := l.l.Accept()
	if err != nil {
		return nil, err
	}
	if tc, ok := c.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
	return &sciConn{c: c}, nil
}

func (l *sciListener) Close() error { return l.l.Close() }
func (l *sciListener) Addr() string { return l.l.Addr().String() }

func (s *sciConn) Send(p []byte) error {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(p)))
	if _, err := s.c.Write(lenBuf[:]); err != nil {
		return s.mapErr(err)
	}
	if _, err := s.c.Write(p); err != nil {
		return s.mapErr(err)
	}
	return nil
}

// SendBuf frames and writes one packet, then releases the buffer.
func (s *sciConn) SendBuf(b *buf.Buffer) error {
	err := s.Send(b.B)
	b.Release()
	return err
}

// SendBatch coalesces the whole batch — every length prefix and every
// payload — into one vectored write (writev on TCP), so N queued SDUs
// cost one syscall instead of 2N.
func (s *sciConn) SendBatch(bs []*buf.Buffer) error {
	defer releaseAll(bs)
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	if cap(s.prefixes) < 4*len(bs) {
		s.prefixes = make([]byte, 0, 4*len(bs))
	}
	if cap(s.vec) < 2*len(bs) {
		s.vec = make(net.Buffers, 0, 2*len(bs))
	}
	pre := s.prefixes[:0]
	vec := s.vec[:0]
	for _, b := range bs {
		off := len(pre)
		pre = binary.BigEndian.AppendUint32(pre, uint32(b.Len()))
		vec = append(vec, pre[off:off+4], b.B)
	}
	work := vec // WriteTo consumes its receiver; keep vec for reuse
	_, err := work.WriteTo(s.c)
	for i := range vec {
		vec[i] = nil // unpin the released buffers from the scratch array
	}
	if err != nil {
		return s.mapErr(err)
	}
	return nil
}

func (s *sciConn) Recv() ([]byte, error) {
	b, err := s.RecvBuf()
	if err != nil {
		return nil, err
	}
	return b.TakeBytes(), nil
}

// RecvBuf reads the next length-prefixed packet into a pooled buffer
// owned by the caller.
func (s *sciConn) RecvBuf() (*buf.Buffer, error) {
	s.readMu.Lock()
	defer s.readMu.Unlock()
	if _, err := io.ReadFull(s.c, s.lenBuf[:]); err != nil {
		return nil, s.mapErr(err)
	}
	n := binary.BigEndian.Uint32(s.lenBuf[:])
	b := buf.Get(int(n))
	if _, err := io.ReadFull(s.c, b.B); err != nil {
		b.Release()
		return nil, s.mapErr(err)
	}
	return b, nil
}

func (s *sciConn) RecvTimeout(d time.Duration) ([]byte, error) {
	b, err := s.RecvBufTimeout(d)
	if err != nil {
		return nil, err
	}
	return b.TakeBytes(), nil
}

func (s *sciConn) RecvBufTimeout(d time.Duration) (*buf.Buffer, error) {
	s.readMu.Lock()
	defer s.readMu.Unlock()
	if err := s.c.SetReadDeadline(time.Now().Add(d)); err != nil {
		return nil, s.mapErr(err)
	}
	defer s.c.SetReadDeadline(time.Time{})

	n0, err := io.ReadFull(s.c, s.lenBuf[:])
	if err != nil {
		if n0 == 0 && isTimeout(err) {
			return nil, ErrRecvTimeout
		}
		return nil, s.mapErr(err)
	}
	n := binary.BigEndian.Uint32(s.lenBuf[:])
	b := buf.Get(int(n))
	if _, err := io.ReadFull(s.c, b.B); err != nil {
		// A timeout here means the stream is desynchronised; surface it
		// as a hard error rather than ErrRecvTimeout.
		b.Release()
		return nil, s.mapErr(err)
	}
	return b, nil
}

func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

func (s *sciConn) Close() error   { return s.c.Close() }
func (s *sciConn) MaxPacket() int { return 0 }
func (s *sciConn) Kind() Kind     { return SCI }
func (s *sciConn) mapErr(err error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
		return ErrConnClosed
	}
	return err
}

// ---------------------------------------------------------------------------
// ACI: AAL5 frames over a simulated ATM VC.

type aciConn struct{ vc *atm.VC }

var _ Conn = (*aciConn)(nil)

// NewACI wraps an established ATM virtual circuit as a Conn.
func NewACI(vc *atm.VC) Conn { return &aciConn{vc: vc} }

func (a *aciConn) Send(p []byte) error {
	if err := a.vc.SendFrame(p); err != nil {
		if errors.Is(err, atm.ErrVCClosed) {
			return ErrConnClosed
		}
		return err
	}
	return nil
}

// SendBuf segments the frame into cells (staged through the cell
// pools), then releases the buffer.
func (a *aciConn) SendBuf(b *buf.Buffer) error {
	err := a.Send(b.B)
	b.Release()
	return err
}

// SendBatch sends the frames back to back; ATM cells already pipeline
// on the VC, so there is no separate vectored path to exploit.
func (a *aciConn) SendBatch(bs []*buf.Buffer) error {
	return sendBatchSeq(a.SendBuf, bs)
}

func (a *aciConn) Recv() ([]byte, error) {
	p, err := a.vc.RecvFrame()
	if err != nil {
		if errors.Is(err, atm.ErrVCClosed) {
			return nil, ErrConnClosed
		}
		return nil, err
	}
	return p, nil
}

// RecvBuf returns the next intact AAL5 frame in the reassembler's
// pooled staging buffer, owned by the caller.
func (a *aciConn) RecvBuf() (*buf.Buffer, error) {
	b, err := a.vc.RecvFrameBuf()
	if err != nil {
		if errors.Is(err, atm.ErrVCClosed) {
			return nil, ErrConnClosed
		}
		return nil, err
	}
	return b, nil
}

func (a *aciConn) RecvTimeout(d time.Duration) ([]byte, error) {
	p, err := a.vc.RecvFrameTimeout(d)
	if err != nil {
		switch {
		case errors.Is(err, atm.ErrRecvTimeout):
			return nil, ErrRecvTimeout
		case errors.Is(err, atm.ErrVCClosed):
			return nil, ErrConnClosed
		}
		return nil, err
	}
	return p, nil
}

func (a *aciConn) RecvBufTimeout(d time.Duration) (*buf.Buffer, error) {
	b, err := a.vc.RecvFrameBufTimeout(d)
	if err != nil {
		switch {
		case errors.Is(err, atm.ErrRecvTimeout):
			return nil, ErrRecvTimeout
		case errors.Is(err, atm.ErrVCClosed):
			return nil, ErrConnClosed
		}
		return nil, err
	}
	return b, nil
}

func (a *aciConn) Close() error   { return a.vc.Close() }
func (a *aciConn) MaxPacket() int { return atm.MaxFrameSize }
func (a *aciConn) Kind() Kind     { return ACI }

// VC exposes the underlying circuit (for QoS inspection and loss stats).
func (a *aciConn) VC() *atm.VC { return a.vc }

// ACIStats extracts frame-drop statistics if c is an ACI connection.
func ACIStats(c Conn) (dropped int, ok bool) {
	a, isACI := c.(*aciConn)
	if !isACI {
		return 0, false
	}
	return a.vc.FramesDropped(), true
}

// Impair applies programmable impairments to the connection's transmit
// direction mid-run: packets (HPI) or cells (ACI) this side sends are
// impaired from the next one onward. It reports false for transports
// with no simulated link to impair (SCI rides a real TCP socket).
// Wrapped connections are unwrapped via an Unwrap() Conn method.
func Impair(c Conn, imp netsim.Impairments) bool {
	switch t := c.(type) {
	case *hpiConn:
		t.ep.SetImpairments(imp)
		return true
	case *aciConn:
		t.vc.SetImpairments(imp)
		return true
	case *udpConn:
		t.setImpairments(imp)
		return true
	}
	if u, ok := c.(interface{ Unwrap() Conn }); ok {
		return Impair(u.Unwrap(), imp)
	}
	return false
}

// ImpairStats reports the impairment decisions made on traffic the
// connection's local endpoint has transmitted, when the connection
// rides a simulated link: HPI counts SDU packets, ACI counts ATM
// cells. The second result is false for transports with no simulated
// link (SCI). Wrapped connections are unwrapped as in Impair.
func ImpairStats(c Conn) (netsim.ImpairStats, bool) {
	switch t := c.(type) {
	case *hpiConn:
		return t.ep.ImpairStats(), true
	case *aciConn:
		return t.vc.ImpairStats(), true
	case *udpConn:
		return t.impairStats(), true
	}
	if u, ok := c.(interface{ Unwrap() Conn }); ok {
		return ImpairStats(u.Unwrap())
	}
	return netsim.ImpairStats{}, false
}

// ---------------------------------------------------------------------------
// HPI: in-process shared-memory style interface.

type hpiConn struct{ ep *netsim.Endpoint }

var _ Conn = (*hpiConn)(nil)

// HPIPair returns two connected HPI endpoints. The underlying channel is
// an in-process queue with no simulated bandwidth or delay, modelling a
// trap/firmware interface on a tightly coupled cluster.
func HPIPair() (Conn, Conn) {
	a, b := netsim.Pipe(netsim.LoopbackParams(), netsim.LoopbackParams())
	return &hpiConn{ep: a}, &hpiConn{ep: b}
}

// HPIPairWithParams returns a connected HPI pair whose two directions
// use the given link parameters — useful for tests that need loss or
// bounded buffers without the ATM cell machinery.
func HPIPairWithParams(aToB, bToA netsim.Params) (Conn, Conn) {
	a, b := netsim.Pipe(aToB, bToA)
	return &hpiConn{ep: a}, &hpiConn{ep: b}
}

func (h *hpiConn) Send(p []byte) error {
	if err := h.ep.Send(p); err != nil {
		return ErrConnClosed
	}
	return nil
}

// SendBuf hands the buffer to the in-process link zero-copy: the
// receiver's RecvBuf surfaces the very same storage.
func (h *hpiConn) SendBuf(b *buf.Buffer) error {
	if err := h.ep.SendBuf(b); err != nil {
		return ErrConnClosed
	}
	return nil
}

// SendBatch enqueues the batch back to back; HPI has no syscall to
// amortise, so the win is just the zero-copy handoff per packet.
func (h *hpiConn) SendBatch(bs []*buf.Buffer) error {
	return sendBatchSeq(h.SendBuf, bs)
}

func (h *hpiConn) Recv() ([]byte, error) {
	p, err := h.ep.Recv()
	if err != nil {
		return nil, ErrConnClosed
	}
	return p, nil
}

func (h *hpiConn) RecvBuf() (*buf.Buffer, error) {
	b, err := h.ep.RecvBuf()
	if err != nil {
		return nil, ErrConnClosed
	}
	return b, nil
}

func (h *hpiConn) RecvTimeout(d time.Duration) ([]byte, error) {
	p, err := h.ep.RecvTimeout(d)
	if err != nil {
		if errors.Is(err, netsim.ErrTimeout) {
			return nil, ErrRecvTimeout
		}
		return nil, ErrConnClosed
	}
	return p, nil
}

func (h *hpiConn) RecvBufTimeout(d time.Duration) (*buf.Buffer, error) {
	b, err := h.ep.RecvBufTimeout(d)
	if err != nil {
		if errors.Is(err, netsim.ErrTimeout) {
			return nil, ErrRecvTimeout
		}
		return nil, ErrConnClosed
	}
	return b, nil
}

// TryRecvBuf implements Poller over the in-process link's arrival queue.
func (h *hpiConn) TryRecvBuf() (*buf.Buffer, error) {
	b, err := h.ep.TryRecvBuf()
	if err != nil {
		return nil, ErrConnClosed
	}
	return b, nil
}

// SetRecvNotify implements Poller; see netsim.Endpoint.SetRecvNotify.
func (h *hpiConn) SetRecvNotify(fn func()) { h.ep.SetRecvNotify(fn) }

var _ Poller = (*hpiConn)(nil)

func (h *hpiConn) Close() error   { return h.ep.Close() }
func (h *hpiConn) MaxPacket() int { return 0 }
func (h *hpiConn) Kind() Kind     { return HPI }
