package transport

import (
	"bytes"
	"testing"
)

// FuzzUDPFrame drives the wire-frame parser — the single entry point
// every received datagram passes through before demux — with arbitrary
// bytes. Properties: the parser never panics, never accepts a frame
// whose header violates the format (bad magic, unknown type, nonzero
// reserved bytes, short datagram), and every accepted frame survives a
// re-marshal round trip: encoding the parsed header and appending the
// payload view must reproduce the input datagram byte for byte.
func FuzzUDPFrame(f *testing.F) {
	// Seed with every valid frame type, boundary sizes, and near-miss
	// corruptions of each header field.
	var h [udpHeaderSize]byte
	for _, ft := range []byte{frameData, frameOpen, frameOpenAck, frameClose} {
		putUDPHeader(&h, ft, 7)
		f.Add(append(h[:len(h):len(h)], []byte("payload")...))
		f.Add(h[:len(h):len(h)])
	}
	putUDPHeader(&h, frameData, 0xFFFFFFFF)
	f.Add(h[:len(h):len(h)])
	f.Add([]byte{})
	f.Add([]byte{udpMagic})
	f.Add([]byte{udpMagic, frameData, 0, 0, 0, 0, 0}) // one byte short
	f.Add([]byte{0x00, frameData, 0, 0, 0, 0, 0, 1})  // bad magic
	f.Add([]byte{udpMagic, 0, 0, 0, 0, 0, 0, 1})      // type zero
	f.Add([]byte{udpMagic, frameTypeMax + 1, 0, 0, 0, 0, 0, 1})
	f.Add([]byte{udpMagic, frameData, 1, 0, 0, 0, 0, 1}) // reserved set

	f.Fuzz(func(t *testing.T, data []byte) {
		ftype, chanID, payload, err := parseUDPFrame(data)
		if err != nil {
			// Rejected datagrams must actually be malformed: a valid
			// header must never be turned away (that would be silent
			// wire loss the impairment ledger can't account for).
			if len(data) >= udpHeaderSize &&
				data[0] == udpMagic &&
				data[1] >= 1 && data[1] <= frameTypeMax &&
				data[2] == 0 && data[3] == 0 {
				t.Fatalf("well-formed frame rejected: %v (header %x)", err, data[:udpHeaderSize])
			}
			return
		}
		if ftype < 1 || ftype > frameTypeMax {
			t.Fatalf("accepted frame type %d outside [1, %d]", ftype, frameTypeMax)
		}
		if len(payload) != len(data)-udpHeaderSize {
			t.Fatalf("payload length %d, want %d", len(payload), len(data)-udpHeaderSize)
		}
		var rt [udpHeaderSize]byte
		putUDPHeader(&rt, ftype, chanID)
		if !bytes.Equal(rt[:], data[:udpHeaderSize]) {
			t.Fatalf("header round trip: got %x, want %x", rt[:], data[:udpHeaderSize])
		}
		if !bytes.Equal(payload, data[udpHeaderSize:]) {
			t.Fatal("payload view does not alias the datagram tail")
		}
	})
}
