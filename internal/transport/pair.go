package transport

import (
	"fmt"

	"ncs/internal/atm"
)

// PairConfig controls NewPair.
type PairConfig struct {
	Kind Kind
	// QoS applies to ACI pairs.
	QoS atm.QoS
}

// NewPair returns two connected Conns of the requested kind, plus a
// cleanup function. It hides the per-interface setup (TCP listener
// handshake, ATM signaling) so tests and benchmarks can get a connected
// pair in one call.
func NewPair(cfg PairConfig) (a, b Conn, cleanup func(), err error) {
	switch cfg.Kind {
	case HPI:
		a, b = HPIPair()
		return a, b, func() { a.Close(); b.Close() }, nil

	case ACI:
		nw := atm.NewNetwork()
		h1 := nw.Host("pair-a")
		h2 := nw.Host("pair-b")
		acceptCh := make(chan *atm.VC, 1)
		errCh := make(chan error, 1)
		go func() {
			vc, err := h2.Accept()
			if err != nil {
				errCh <- err
				return
			}
			acceptCh <- vc
		}()
		out, err := h1.Dial("pair-b", cfg.QoS)
		if err != nil {
			nw.Close()
			return nil, nil, nil, err
		}
		select {
		case vc := <-acceptCh:
			a, b = NewACI(out), NewACI(vc)
			return a, b, func() { a.Close(); b.Close(); nw.Close() }, nil
		case err := <-errCh:
			nw.Close()
			return nil, nil, nil, err
		}

	case SCI:
		l, err := ListenSCI("127.0.0.1:0")
		if err != nil {
			return nil, nil, nil, err
		}
		connCh := make(chan Conn, 1)
		errCh := make(chan error, 1)
		go func() {
			c, err := l.Accept()
			if err != nil {
				errCh <- err
				return
			}
			connCh <- c
		}()
		out, err := DialSCI(l.Addr())
		if err != nil {
			l.Close()
			return nil, nil, nil, err
		}
		select {
		case in := <-connCh:
			return out, in, func() { out.Close(); in.Close(); l.Close() }, nil
		case err := <-errCh:
			out.Close()
			l.Close()
			return nil, nil, nil, err
		}

	default:
		return nil, nil, nil, fmt.Errorf("transport: unknown kind %v", cfg.Kind)
	}
}
