package transport

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"ncs/internal/buf"
)

// TestMain audits the package for leaks: the UDP transport adds real
// goroutines (one socket reader per endpoint, a lazy delay sender) and
// moves pooled buffers through kernel sockets, so after every test has
// closed its conns the process must quiesce back to the pre-test
// goroutine count with zero pooled buffer references outstanding.
func TestMain(m *testing.M) {
	baseline := runtime.NumGoroutine()
	code := m.Run()
	if code == 0 && !fuzzing() {
		if err := awaitQuiescence(baseline, 10*time.Second); err != nil {
			fmt.Fprintln(os.Stderr, err)
			code = 1
		}
	}
	os.Exit(code)
}

// fuzzing reports whether this process is a fuzz run: the fuzz engine
// keeps an os/signal goroutine alive past m.Run, which the audit would
// misread as a transport leak.
func fuzzing() bool {
	for _, arg := range os.Args {
		if strings.HasPrefix(arg, "-test.fuzz=") || strings.HasPrefix(arg, "--test.fuzz=") {
			return true
		}
	}
	return false
}

func awaitQuiescence(baseline int, patience time.Duration) error {
	deadline := time.Now().Add(patience)
	for {
		goroutines := runtime.NumGoroutine()
		bufs := buf.Outstanding()
		if goroutines <= baseline && bufs == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			stack := make([]byte, 1<<20)
			stack = stack[:runtime.Stack(stack, true)]
			return fmt.Errorf("leak audit: %d goroutines (baseline %d), %d pooled buffer refs outstanding\n%s",
				goroutines, baseline, bufs, stack)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
