package transport

import (
	"bytes"
	"sync/atomic"
	"testing"
	"time"

	"ncs/internal/buf"
)

// countingConn counts per-packet sends beneath the chunker (the
// chunker stages chunks in pooled buffers, so SendBuf is its inner
// path).
type countingConn struct {
	Conn
	sends atomic.Int32
}

func (c *countingConn) Send(p []byte) error {
	c.sends.Add(1)
	return c.Conn.Send(p)
}

func (c *countingConn) SendBuf(b *buf.Buffer) error {
	c.sends.Add(1)
	return c.Conn.SendBuf(b)
}

func TestChunkedRoundTrip(t *testing.T) {
	a, b := HPIPair()
	ca := Chunked(a, 100)
	cb := Chunked(b, 100)
	defer ca.Close()
	defer cb.Close()

	sizes := []int{0, 1, 99, 100, 101, 1000, 64 * 1024}
	for _, n := range sizes {
		msg := bytes.Repeat([]byte{byte(n)}, n)
		if err := ca.Send(msg); err != nil {
			t.Fatalf("send %d: %v", n, err)
		}
		got, err := cb.Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", n, err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("size %d mismatch (got %d)", n, len(got))
		}
	}
}

func TestChunkedSplitsWrites(t *testing.T) {
	a, b := HPIPair()
	counter := &countingConn{Conn: a}
	ca := Chunked(counter, 1460)
	cb := Chunked(b, 1460)
	defer ca.Close()
	defer cb.Close()

	if err := ca.Send(make([]byte, 64*1024)); err != nil {
		t.Fatal(err)
	}
	wantChunks := int32((64*1024 + 1459) / 1460)
	if got := counter.sends.Load(); got != wantChunks {
		t.Fatalf("sends = %d, want %d", got, wantChunks)
	}
	if _, err := cb.Recv(); err != nil {
		t.Fatal(err)
	}
}

func TestChunkedMixedSizesPreserveBoundaries(t *testing.T) {
	a, b := HPIPair()
	ca := Chunked(a, 64)
	cb := Chunked(b, 64)
	defer ca.Close()
	defer cb.Close()

	for i := 1; i <= 10; i++ {
		if err := ca.Send(bytes.Repeat([]byte{byte(i)}, i*50)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i <= 10; i++ {
		got, err := cb.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != i*50 || got[0] != byte(i) {
			t.Fatalf("message %d: len=%d first=%d", i, len(got), got[0])
		}
	}
}

func TestChunkedRecvTimeout(t *testing.T) {
	a, b := HPIPair()
	ca := Chunked(a, 32)
	cb := Chunked(b, 32)
	defer ca.Close()
	defer cb.Close()

	if _, err := cb.RecvTimeout(10 * time.Millisecond); err != ErrRecvTimeout {
		t.Fatalf("err = %v, want ErrRecvTimeout", err)
	}
	if err := ca.Send([]byte("arrives")); err != nil {
		t.Fatal(err)
	}
	got, err := cb.RecvTimeout(time.Second)
	if err != nil || string(got) != "arrives" {
		t.Fatalf("got %q, %v", got, err)
	}
}

func TestChunkedDefaultSize(t *testing.T) {
	a, b := HPIPair()
	ca := Chunked(a, 0) // defaults to 1460
	cb := Chunked(b, 0)
	defer ca.Close()
	defer cb.Close()
	if err := ca.Send(make([]byte, 5000)); err != nil {
		t.Fatal(err)
	}
	got, err := cb.Recv()
	if err != nil || len(got) != 5000 {
		t.Fatalf("len=%d err=%v", len(got), err)
	}
}
