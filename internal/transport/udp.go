// Real-wire UDP transport.
//
// udpConn is the first Conn in this package that moves bytes through
// the kernel instead of internal/netsim: one datagram per NCS packet
// over a loopback or real network socket, with the reliability,
// flow-control, and reassembly layers above it unchanged — exactly the
// thin unreliable substrate the paper's protocol stack was designed to
// sit on (§2: "the underlying network provides unreliable datagram
// delivery").
//
// Design points:
//
//   - Batched syscalls. On Linux the send path coalesces the core send
//     thread's vectored SendBatch into a single sendmmsg(2), and one
//     reader goroutine per socket drains arrivals recvmmsg(2)-style
//     into pooled buffers; other platforms fall back to one syscall
//     per datagram through the same interface (see udp_portable.go).
//   - Zero-copy receive. Datagrams land directly in internal/buf
//     pooled storage sized so the default SDU stage fits the 4KB pool
//     tier; the frame header is skipped by reslicing, and the same
//     buffer travels up through demux, the per-conn inbound queue, and
//     TryRecvBuf to the runtime.
//   - Poller. udpConn implements the reactor interface, so sharded
//     runtimes service UDP connections without a pump goroutine per
//     connection; the per-socket reader is the only goroutine the
//     transport adds, shared by every conn on a listener.
//   - Seeded impairment. Each conn's send side owns a
//     netsim.WireImpairer, so the chaos matrix and the flow/error
//     control property tests run their seeded drop/dup/reorder
//     schedules over genuine sockets (UDPLink.Impair / Schedule, or
//     transport.Impair mid-run).
//
// Wire format: every datagram is an 8-byte header followed by the
// packet payload:
//
//	byte 0     magic (0xD9)
//	byte 1     frame type (data, open, openack, close)
//	bytes 2-3  reserved (zero)
//	bytes 4-7  channel ID, big endian
//
// The channel ID demultiplexes conns sharing a listener socket. A
// dialer sends OPEN (channel 0) and the listener assigns a channel,
// keyed by source address so retried OPENs are idempotent, answering
// with OPENACK carrying the assignment. CLOSE is best-effort — UDP can
// lose it, so owners must still Close their end.
package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ncs/internal/buf"
	"ncs/internal/netsim"
	"ncs/internal/telemetry"
)

// UDPLink configures the real-wire UDP transport; the zero value (or a
// nil pointer) gives a clean, unimpaired link with default batching.
type UDPLink struct {
	// Batch caps the datagrams coalesced into one sendmmsg and the
	// slots offered to one recvmmsg. Default 16 (the core send thread's
	// coalescing depth); 1 forces one syscall per datagram.
	Batch int
	// MaxPacket is the largest packet payload a conn accepts, and
	// determines the receive slot size (MaxPacket + header). The
	// default, 4216, fits a default-stage SDU and lands receive slots
	// exactly on the 4KB buffer pool tier. Both ends of a link must
	// agree: a datagram larger than the receiver's slot is truncated
	// and dropped (counted by transport.udp.trunc_total).
	MaxPacket int
	// RecvBuf is the SO_RCVBUF size requested for the socket; generous
	// socket buffers stand in for link-level flow control on loopback
	// floods. Default 4MB. Best effort: the kernel may clamp it.
	RecvBuf int
	// Seed seeds each conn's send-side impairer (0 means the netsim
	// default seed), so a seed + config + send sequence replays its
	// failure decisions exactly, matching netsim semantics.
	Seed int64
	// Impair is the initial impairment set applied to outbound data
	// frames (drop, duplicate, reorder-by-delay; corruption is not
	// simulated on real sockets). Control frames are never impaired.
	Impair netsim.Impairments
	// Schedule switches impairments by outbound packet count, exactly
	// as netsim.Params.Schedule does.
	Schedule []netsim.Phase
}

const (
	defaultUDPBatch     = 16
	defaultUDPMaxPacket = 4216 // + header = 4224, the default SDU stage
	defaultUDPRecvBuf   = 4 << 20

	udpInqDepth    = 1024
	udpOpenRetries = 8
	udpOpenTimeout = 250 * time.Millisecond
)

func (l *UDPLink) withDefaults() UDPLink {
	var c UDPLink
	if l != nil {
		c = *l
	}
	if c.Batch <= 0 {
		c.Batch = defaultUDPBatch
	}
	if c.MaxPacket <= 0 {
		c.MaxPacket = defaultUDPMaxPacket
	}
	if c.RecvBuf <= 0 {
		c.RecvBuf = defaultUDPRecvBuf
	}
	return c
}

// BatchSyscallsSupported reports whether this platform coalesces
// datagrams into single sendmmsg/recvmmsg syscalls (Linux) or falls
// back to one syscall per datagram. The wire bench gates its
// batched-vs-unbatched verdict on it.
func BatchSyscallsSupported() bool { return batchSyscallsSupported }

// The transport.udp.* instruments (catalogued in telemetry/doc.go).
var (
	mUDPSendDatagrams  = telemetry.NewCounter("transport.udp.send_datagrams_total")
	mUDPRecvDatagrams  = telemetry.NewCounter("transport.udp.recv_datagrams_total")
	mUDPSendSyscalls   = telemetry.NewCounter("transport.udp.send_syscalls_total")
	mUDPRecvSyscalls   = telemetry.NewCounter("transport.udp.recv_syscalls_total")
	mUDPEagain         = telemetry.NewCounter("transport.udp.eagain_total")
	mUDPTrunc          = telemetry.NewCounter("transport.udp.trunc_total")
	mUDPDemuxDrop      = telemetry.NewCounter("transport.udp.demux_drop_total")
	mUDPQueueDrop      = telemetry.NewCounter("transport.udp.queue_drop_total")
	mUDPSendBatchDepth = telemetry.NewHistogram("transport.udp.send_batch_depth")
	mUDPRecvBatchDepth = telemetry.NewHistogram("transport.udp.recv_batch_depth")
)

// ---------------------------------------------------------------------------
// Wire framing.

const (
	udpMagic      = 0xD9
	udpHeaderSize = 8
)

const (
	frameData = iota + 1
	frameOpen
	frameOpenAck
	frameClose
	frameTypeMax = frameClose
)

// putUDPHeader writes the 8-byte frame header.
func putUDPHeader(h *[udpHeaderSize]byte, ftype byte, chanID uint32) {
	h[0] = udpMagic
	h[1] = ftype
	h[2], h[3] = 0, 0
	h[4] = byte(chanID >> 24)
	h[5] = byte(chanID >> 16)
	h[6] = byte(chanID >> 8)
	h[7] = byte(chanID)
}

// parseUDPFrame validates a received datagram and returns its frame
// type, channel ID, and payload view (aliasing p). It is the single
// entry point every arrival passes through, and the fuzz target.
func parseUDPFrame(p []byte) (ftype byte, chanID uint32, payload []byte, err error) {
	if len(p) < udpHeaderSize {
		return 0, 0, nil, errors.New("udp frame: short datagram")
	}
	if p[0] != udpMagic {
		return 0, 0, nil, errors.New("udp frame: bad magic")
	}
	ftype = p[1]
	if ftype == 0 || ftype > frameTypeMax {
		return 0, 0, nil, fmt.Errorf("udp frame: unknown type %d", ftype)
	}
	if p[2] != 0 || p[3] != 0 {
		return 0, 0, nil, errors.New("udp frame: nonzero reserved bytes")
	}
	chanID = uint32(p[4])<<24 | uint32(p[5])<<16 | uint32(p[6])<<8 | uint32(p[7])
	return ftype, chanID, p[udpHeaderSize:], nil
}

// outMsg is one outbound datagram handed to the platform batch-I/O
// layer: the frame header inline (so the Linux path can point an iovec
// at it and prepend without copying) plus the payload buffer and, on
// unconnected sockets, the destination.
type outMsg struct {
	hdr [udpHeaderSize]byte
	b   *buf.Buffer // payload; nil for control frames
	to  *wireAddr   // nil on connected sockets
}

// recvMeta describes one received datagram alongside its slot buffer.
type recvMeta struct {
	n     int  // datagram length (bytes stored in the slot)
	trunc bool // datagram exceeded the slot and was cut short
	from  addrKey
}

// addrKey is a comparable source-address key for demux maps, built
// without allocating a net.UDPAddr per datagram.
type addrKey struct {
	ip   [16]byte
	port uint16
	v4   bool
}

func addrKeyFromUDP(a *net.UDPAddr) addrKey {
	var k addrKey
	if ip4 := a.IP.To4(); ip4 != nil {
		copy(k.ip[:4], ip4)
		k.v4 = true
	} else {
		copy(k.ip[:], a.IP.To16())
	}
	k.port = uint16(a.Port)
	return k
}

func (k addrKey) udpAddr() *net.UDPAddr {
	if k.v4 {
		return &net.UDPAddr{IP: net.IP(append([]byte(nil), k.ip[:4]...)), Port: int(k.port)}
	}
	return &net.UDPAddr{IP: net.IP(append([]byte(nil), k.ip[:]...)), Port: int(k.port)}
}

// ---------------------------------------------------------------------------
// Inbound queue: the per-conn arrival buffer between the socket reader
// and the runtime, with netsim-matching Poller semantics (drain fully,
// then ErrConnClosed).

type udpInq struct {
	ch   chan *buf.Buffer
	dead chan struct{}

	mu     sync.Mutex
	closed bool
	notify func()
}

func (q *udpInq) init() {
	q.ch = make(chan *buf.Buffer, udpInqDepth)
	q.dead = make(chan struct{})
}

// push enqueues an arrival, dropping it (UDP-style) when the queue is
// full or the conn is closed. The notify hook fires outside the lock.
func (q *udpInq) push(b *buf.Buffer) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		b.Release()
		return
	}
	select {
	case q.ch <- b:
	default:
		q.mu.Unlock()
		b.Release()
		mUDPQueueDrop.Inc()
		return
	}
	fn := q.notify
	q.mu.Unlock()
	if fn != nil {
		fn()
	}
}

// shutdown closes the queue. With drain, queued buffers are released
// (the local owner is done); without, they stay readable so a peer
// close delivers everything that arrived first. Idempotent, and a
// drain shutdown after a no-drain one still drains.
func (q *udpInq) shutdown(drain bool) {
	q.mu.Lock()
	if !q.closed {
		q.closed = true
		close(q.dead)
	}
	if drain {
		for {
			select {
			case b := <-q.ch:
				b.Release()
				continue
			default:
			}
			break
		}
	}
	fn := q.notify
	q.mu.Unlock()
	if fn != nil {
		fn()
	}
}

func (q *udpInq) tryPop() (*buf.Buffer, error) {
	select {
	case b := <-q.ch:
		return b, nil
	default:
	}
	select {
	case <-q.dead:
		// Closed; anything pushed before the close flag was set is
		// still in ch — re-check so the queue drains before erroring.
		select {
		case b := <-q.ch:
			return b, nil
		default:
			return nil, ErrConnClosed
		}
	default:
		return nil, nil
	}
}

// pop blocks for the next arrival; deadline may be nil (block forever).
func (q *udpInq) pop(deadline <-chan time.Time) (*buf.Buffer, error) {
	select {
	case b := <-q.ch:
		return b, nil
	default:
	}
	select {
	case b := <-q.ch:
		return b, nil
	case <-q.dead:
		select {
		case b := <-q.ch:
			return b, nil
		default:
			return nil, ErrConnClosed
		}
	case <-deadline:
		return nil, ErrRecvTimeout
	}
}

func (q *udpInq) setNotify(fn func()) {
	q.mu.Lock()
	q.notify = fn
	q.mu.Unlock()
	if fn != nil {
		fn()
	}
}

// ---------------------------------------------------------------------------
// Endpoint: one socket, its reader goroutine, and the conns on it.

type udpEndpoint struct {
	sock      *net.UDPConn
	cfg       UDPLink
	slotSize  int
	connected bool

	// Send side: one lock serialises all conns' sends through the
	// shared scratch (outMsg slice, platform iovec/header arrays) —
	// and, as a consequence, keeps every conn's impairer draws in a
	// deterministic per-conn order.
	sendMu sync.Mutex
	io     *batchIO
	msgs   []outMsg
	one    [1]*buf.Buffer

	delay delaySender

	mu       sync.Mutex
	isClosed bool
	single   *udpConn // connected or pair endpoints: the only conn
	byChan   map[uint32]*udpConn
	byAddr   map[addrKey]*udpConn
	nextID   uint32
	lis      *udpListener
	ackCh    chan uint32 // dialer: OPENACK channel assignments

	readerDone chan struct{}
}

func newUDPEndpoint(sock *net.UDPConn, connected bool, cfg UDPLink) (*udpEndpoint, error) {
	// Best effort: loopback floods overrun default socket buffers long
	// before the protocol's own flow control engages.
	_ = sock.SetReadBuffer(cfg.RecvBuf)
	_ = sock.SetWriteBuffer(cfg.RecvBuf)
	bio, err := newBatchIO(sock, connected)
	if err != nil {
		sock.Close()
		return nil, err
	}
	ep := &udpEndpoint{
		sock:       sock,
		cfg:        cfg,
		slotSize:   cfg.MaxPacket + udpHeaderSize,
		connected:  connected,
		io:         bio,
		byChan:     make(map[uint32]*udpConn),
		byAddr:     make(map[addrKey]*udpConn),
		nextID:     1,
		readerDone: make(chan struct{}),
	}
	ep.delay.ep = ep
	ep.delay.wake = make(chan struct{}, 1)
	ep.delay.done = make(chan struct{})
	go ep.readLoop()
	return ep, nil
}

func (ep *udpEndpoint) newConn(chanID uint32, from addrKey, to *net.UDPAddr) (*udpConn, error) {
	c := &udpConn{
		ep:        ep,
		fromKey:   from,
		maxPacket: ep.cfg.MaxPacket,
		imp:       netsim.NewWireImpairer(ep.cfg.Seed, ep.cfg.Impair, ep.cfg.Schedule),
	}
	c.chanID.Store(chanID)
	c.inq.init()
	if to != nil {
		wa, err := encodeWireAddr(to)
		if err != nil {
			return nil, err
		}
		c.wa = wa
		c.to = &c.wa
	}
	return c, nil
}

// close tears the endpoint down: pending delayed sends are released
// unsent, the socket close unhooks the reader, and every conn's queue
// is marked dead (without draining — their owners' Close drains).
func (ep *udpEndpoint) close() {
	ep.mu.Lock()
	if ep.isClosed {
		ep.mu.Unlock()
		return
	}
	ep.isClosed = true
	conns := ep.collectLocked()
	ep.mu.Unlock()

	ep.delay.close()
	ep.sock.Close()
	for _, c := range conns {
		c.inq.shutdown(false)
	}
	<-ep.readerDone
}

func (ep *udpEndpoint) collectLocked() []*udpConn {
	var conns []*udpConn
	if ep.single != nil {
		conns = append(conns, ep.single)
	}
	for _, c := range ep.byChan {
		conns = append(conns, c)
	}
	return conns
}

// readLoop is the endpoint's only goroutine: it refills pooled slot
// buffers, drains the socket in recvmmsg batches, and routes each
// datagram. Exits when the socket closes or dies.
func (ep *udpEndpoint) readLoop() {
	defer close(ep.readerDone)
	batch := ep.cfg.Batch
	slots := make([]*buf.Buffer, batch)
	meta := make([]recvMeta, batch)
	defer func() {
		for i, b := range slots {
			if b != nil {
				b.Release()
				slots[i] = nil
			}
		}
		// The socket is dead: no further arrivals, so wake and close
		// every conn's queue (no-op when close() already did).
		ep.mu.Lock()
		conns := ep.collectLocked()
		ep.mu.Unlock()
		for _, c := range conns {
			c.inq.shutdown(false)
		}
	}()
	for {
		for i := range slots {
			if slots[i] == nil {
				slots[i] = buf.Get(ep.slotSize)
			}
		}
		n, err := ep.io.recvBatch(slots, meta)
		if err != nil {
			if isTransientRecvErr(err) {
				continue
			}
			return
		}
		mUDPRecvBatchDepth.Observe(int64(n))
		mUDPRecvDatagrams.Add(int64(n))
		for i := 0; i < n; i++ {
			b := slots[i]
			slots[i] = nil
			ep.dispatch(b, meta[i])
		}
	}
}

// isTransientRecvErr reports errors the reader should ride out: an
// ICMP port-unreachable surfacing on a connected socket (the peer
// closed first; our side is mid-teardown) is not a socket failure.
func isTransientRecvErr(err error) bool {
	return errors.Is(err, errConnRefused)
}

// dispatch routes one received datagram, taking ownership of b.
func (ep *udpEndpoint) dispatch(b *buf.Buffer, m recvMeta) {
	if m.trunc {
		b.Release()
		mUDPTrunc.Inc()
		return
	}
	ftype, chanID, _, err := parseUDPFrame(b.B[:m.n])
	if err != nil {
		b.Release()
		mUDPDemuxDrop.Inc()
		return
	}
	switch ftype {
	case frameData:
		c := ep.lookup(chanID, m.from)
		if c == nil {
			b.Release()
			mUDPDemuxDrop.Inc()
			return
		}
		b.B = b.B[udpHeaderSize:m.n]
		c.inq.push(b)
	case frameOpen:
		b.Release()
		ep.handleOpen(m.from)
	case frameOpenAck:
		b.Release()
		ep.mu.Lock()
		ack := ep.ackCh
		ep.mu.Unlock()
		if ack != nil {
			select {
			case ack <- chanID:
			default:
			}
		}
	case frameClose:
		b.Release()
		if c := ep.lookup(chanID, m.from); c != nil {
			ep.mu.Lock()
			if ep.byChan[chanID] == c {
				delete(ep.byChan, chanID)
				delete(ep.byAddr, c.fromKey)
			}
			ep.mu.Unlock()
			c.inq.shutdown(false)
		}
	}
}

// lookup resolves a data/close frame to its conn. Connected sockets
// (and pair endpoints) carry exactly one conn and the kernel — or the
// pair's source check — has already filtered the remote, so any
// channel ID is accepted there: a dialer can legitimately see data
// before it processes the OPENACK that tells it its own channel.
func (ep *udpEndpoint) lookup(chanID uint32, from addrKey) *udpConn {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if ep.single != nil {
		if !ep.connected && from != ep.single.fromKey {
			return nil
		}
		return ep.single
	}
	c := ep.byChan[chanID]
	if c == nil || from != c.fromKey {
		return nil
	}
	return c
}

// handleOpen mints (or re-finds) the conn for a dialer and answers
// OPENACK. Keyed by source address: a retransmitted OPEN re-acks the
// same channel instead of minting a duplicate.
func (ep *udpEndpoint) handleOpen(from addrKey) {
	ep.mu.Lock()
	if ep.lis == nil || ep.isClosed {
		ep.mu.Unlock()
		return
	}
	c := ep.byAddr[from]
	if c == nil {
		nc, err := ep.newConn(0, from, from.udpAddr())
		if err != nil {
			ep.mu.Unlock()
			return
		}
		select {
		case ep.lis.acceptCh <- nc:
			id := ep.nextID
			ep.nextID++
			nc.chanID.Store(id)
			ep.byChan[id] = nc
			ep.byAddr[from] = nc
			c = nc
		default:
			// Accept backlog full: drop the OPEN; the dialer retries.
			ep.mu.Unlock()
			return
		}
	}
	id := c.chanID.Load()
	to := c.to
	ep.mu.Unlock()
	ep.sendControl(frameOpenAck, id, to)
}

// sendControl sends one unimpaired control frame, best effort.
func (ep *udpEndpoint) sendControl(ftype byte, chanID uint32, to *wireAddr) {
	var m outMsg
	putUDPHeader(&m.hdr, ftype, chanID)
	m.to = to
	ep.sendMu.Lock()
	ep.msgs = append(ep.msgs[:0], m)
	err := ep.io.sendBatch(ep.msgs)
	ep.sendMu.Unlock()
	if err == nil {
		mUDPSendDatagrams.Inc()
	}
}

// sendDelayed transmits one reordered data frame at its deadline,
// releasing the payload reference the delay queue held.
func (ep *udpEndpoint) sendDelayed(m outMsg) {
	ep.sendMu.Lock()
	err := ep.io.sendBatch(append(ep.msgs[:0], m))
	ep.sendMu.Unlock()
	if err == nil {
		mUDPSendDatagrams.Inc()
		mUDPSendBatchDepth.Observe(1)
	}
	if m.b != nil {
		m.b.Release()
	}
}

// ---------------------------------------------------------------------------
// Delay queue: reordered datagrams wait here, letting later sends
// overtake them on the wire. One lazily-started goroutine per endpoint.

type delayed struct {
	due time.Time
	msg outMsg
}

type delaySender struct {
	ep   *udpEndpoint
	wake chan struct{}
	done chan struct{}

	mu      sync.Mutex
	h       []delayed // min-heap on due
	closed  bool
	running bool
}

func (ds *delaySender) enqueue(m outMsg, d time.Duration) {
	ds.mu.Lock()
	if ds.closed {
		ds.mu.Unlock()
		if m.b != nil {
			m.b.Release()
		}
		return
	}
	ds.h = append(ds.h, delayed{due: time.Now().Add(d), msg: m})
	siftUp(ds.h)
	if !ds.running {
		ds.running = true
		go ds.run()
	}
	ds.mu.Unlock()
	select {
	case ds.wake <- struct{}{}:
	default:
	}
}

func (ds *delaySender) close() {
	ds.mu.Lock()
	if ds.closed {
		ds.mu.Unlock()
		return
	}
	ds.closed = true
	running := ds.running
	ds.mu.Unlock()
	select {
	case ds.wake <- struct{}{}:
	default:
	}
	if running {
		<-ds.done
	}
}

func (ds *delaySender) run() {
	defer close(ds.done)
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		ds.mu.Lock()
		if ds.closed {
			for _, d := range ds.h {
				if d.msg.b != nil {
					d.msg.b.Release()
				}
			}
			ds.h = nil
			ds.mu.Unlock()
			return
		}
		if len(ds.h) == 0 {
			ds.mu.Unlock()
			<-ds.wake
			continue
		}
		now := time.Now()
		if wait := ds.h[0].due.Sub(now); wait > 0 {
			ds.mu.Unlock()
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			timer.Reset(wait)
			select {
			case <-ds.wake:
			case <-timer.C:
			}
			continue
		}
		d := heapPopDelayed(&ds.h)
		ds.mu.Unlock()
		ds.ep.sendDelayed(d.msg)
	}
}

// siftUp restores the min-heap property after appending to h.
func siftUp(h []delayed) {
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h[i].due.Before(h[p].due) {
			return
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

func heapPopDelayed(ph *[]delayed) delayed {
	h := *ph
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h[last] = delayed{}
	h = h[:last]
	*ph = h
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < len(h) && h[l].due.Before(h[s].due) {
			s = l
		}
		if r < len(h) && h[r].due.Before(h[s].due) {
			s = r
		}
		if s == i {
			return top
		}
		h[i], h[s] = h[s], h[i]
		i = s
	}
}

// ---------------------------------------------------------------------------
// Conn.

type udpConn struct {
	ep        *udpEndpoint
	chanID    atomic.Uint32
	fromKey   addrKey
	wa        wireAddr
	to        *wireAddr // nil on connected sockets
	maxPacket int
	imp       *netsim.WireImpairer
	inq       udpInq
	closeOnce sync.Once
}

var (
	_ Conn   = (*udpConn)(nil)
	_ Poller = (*udpConn)(nil)
)

func (c *udpConn) Kind() Kind     { return UDP }
func (c *udpConn) MaxPacket() int { return c.maxPacket }

func (c *udpConn) Send(p []byte) error {
	b := buf.GetCap(len(p))
	b.B = append(b.B, p...)
	return c.SendBuf(b)
}

func (c *udpConn) SendBuf(b *buf.Buffer) error {
	ep := c.ep
	ep.sendMu.Lock()
	defer ep.sendMu.Unlock()
	ep.one[0] = b
	return c.sendLocked(ep.one[:1])
}

func (c *udpConn) SendBatch(bs []*buf.Buffer) error {
	if len(bs) == 0 {
		return nil
	}
	ep := c.ep
	ep.sendMu.Lock()
	defer ep.sendMu.Unlock()
	return c.sendLocked(bs)
}

// sendLocked runs the batch through the impairer and flushes the
// survivors in Batch-sized sendmmsg chunks. Consumes one reference per
// buffer even on error, per the SendBatch contract: dropped packets
// release here, delayed packets hand their reference to the delay
// queue, and sent (or send-failed) packets release after the flush.
func (c *udpConn) sendLocked(bs []*buf.Buffer) error {
	ep := c.ep
	id := c.chanID.Load()
	msgs := ep.msgs[:0]
	for i, b := range bs {
		if b.Len() > c.maxPacket {
			for _, m := range msgs {
				m.b.Release()
			}
			ep.msgs = msgs[:0]
			releaseAll(bs[i:])
			return fmt.Errorf("udp: packet %d bytes exceeds MaxPacket %d", b.Len(), c.maxPacket)
		}
		d := c.imp.Decide()
		if d.Drop {
			b.Release()
			continue
		}
		var m outMsg
		putUDPHeader(&m.hdr, frameData, id)
		m.b = b
		m.to = c.to
		if d.Delay > 0 {
			ep.delay.enqueue(m, d.Delay)
			continue
		}
		msgs = append(msgs, m)
		if d.Dup {
			m.b = b.Retain()
			msgs = append(msgs, m)
		}
	}
	ep.msgs = msgs // keep the grown scratch
	var sendErr error
	for off := 0; off < len(msgs); {
		end := off + ep.cfg.Batch
		if end > len(msgs) {
			end = len(msgs)
		}
		chunk := msgs[off:end]
		if sendErr == nil {
			sendErr = ep.io.sendBatch(chunk)
			if sendErr == nil {
				mUDPSendBatchDepth.Observe(int64(len(chunk)))
				mUDPSendDatagrams.Add(int64(len(chunk)))
			}
		}
		for i := range chunk {
			chunk[i].b.Release()
			chunk[i].b = nil
		}
		off = end
	}
	ep.msgs = ep.msgs[:0]
	if sendErr != nil {
		return mapUDPSendErr(sendErr)
	}
	return nil
}

func mapUDPSendErr(err error) error {
	if errors.Is(err, net.ErrClosed) || errors.Is(err, errConnRefused) {
		return ErrConnClosed
	}
	return fmt.Errorf("udp send: %w", err)
}

func (c *udpConn) Recv() ([]byte, error) {
	b, err := c.inq.pop(nil)
	if err != nil {
		return nil, err
	}
	return b.TakeBytes(), nil
}

func (c *udpConn) RecvBuf() (*buf.Buffer, error) {
	return c.inq.pop(nil)
}

func (c *udpConn) RecvTimeout(d time.Duration) ([]byte, error) {
	b, err := c.RecvBufTimeout(d)
	if err != nil {
		return nil, err
	}
	return b.TakeBytes(), nil
}

func (c *udpConn) RecvBufTimeout(d time.Duration) (*buf.Buffer, error) {
	t := time.NewTimer(d)
	defer t.Stop()
	return c.inq.pop(t.C)
}

func (c *udpConn) TryRecvBuf() (*buf.Buffer, error) { return c.inq.tryPop() }
func (c *udpConn) SetRecvNotify(fn func())          { c.inq.setNotify(fn) }

// Close tears down this conn: a best-effort CLOSE frame to the peer,
// then the local queue drains its unread arrivals back to the pool.
// On a dialer or pair endpoint the socket (and its reader) goes down
// too; on a listener the shared socket stays up for its siblings.
func (c *udpConn) Close() error {
	c.closeOnce.Do(func() {
		ep := c.ep
		ep.mu.Lock()
		id := c.chanID.Load()
		if ep.byChan[id] == c {
			delete(ep.byChan, id)
			delete(ep.byAddr, c.fromKey)
		}
		ownsEndpoint := ep.single == c
		closed := ep.isClosed
		ep.mu.Unlock()
		if !closed {
			ep.sendControl(frameClose, id, c.to)
		}
		if ownsEndpoint {
			ep.close()
		}
		c.inq.shutdown(true)
	})
	return nil
}

// setImpairments and impairStats back transport.Impair/ImpairStats.
func (c *udpConn) setImpairments(imp netsim.Impairments) { c.imp.Set(imp) }
func (c *udpConn) impairStats() netsim.ImpairStats       { return c.imp.Stats() }

// ---------------------------------------------------------------------------
// Listener, Dial, and the in-process pair constructor.

type udpListener struct {
	ep       *udpEndpoint
	acceptCh chan *udpConn
	closeOne sync.Once
}

var _ Listener = (*udpListener)(nil)

// ListenUDP binds a UDP socket and accepts NCS wire connections on it.
// Every accepted conn shares the socket (demultiplexed by channel ID),
// so closing the listener tears its accepted conns down with it —
// accept-then-close-listener does not orphan a usable conn, unlike TCP.
func ListenUDP(addr string, link *UDPLink) (Listener, error) {
	cfg := link.withDefaults()
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("udp listen %s: %w", addr, err)
	}
	sock, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, fmt.Errorf("udp listen %s: %w", addr, err)
	}
	ep, err := newUDPEndpoint(sock, false, cfg)
	if err != nil {
		return nil, fmt.Errorf("udp listen %s: %w", addr, err)
	}
	l := &udpListener{ep: ep, acceptCh: make(chan *udpConn, 16)}
	ep.mu.Lock()
	ep.lis = l
	ep.mu.Unlock()
	return l, nil
}

func (l *udpListener) Accept() (Conn, error) {
	c, ok := <-l.acceptCh
	if !ok {
		return nil, ErrConnClosed
	}
	return c, nil
}

func (l *udpListener) Close() error {
	l.closeOne.Do(func() {
		l.ep.close()
		close(l.acceptCh)
		for c := range l.acceptCh {
			c.inq.shutdown(true)
		}
	})
	return nil
}

func (l *udpListener) Addr() string { return l.ep.sock.LocalAddr().String() }

// DialUDP connects to a UDP listener and completes the OPEN handshake,
// retrying against loss until the listener answers or the attempt
// budget runs out.
func DialUDP(addr string, link *UDPLink) (Conn, error) {
	cfg := link.withDefaults()
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("udp dial %s: %w", addr, err)
	}
	sock, err := net.DialUDP("udp", nil, ua)
	if err != nil {
		return nil, fmt.Errorf("udp dial %s: %w", addr, err)
	}
	ep, err := newUDPEndpoint(sock, true, cfg)
	if err != nil {
		return nil, fmt.Errorf("udp dial %s: %w", addr, err)
	}
	c, err := ep.newConn(0, addrKey{}, nil)
	if err != nil {
		ep.close()
		return nil, fmt.Errorf("udp dial %s: %w", addr, err)
	}
	ack := make(chan uint32, 1)
	ep.mu.Lock()
	ep.single = c
	ep.ackCh = ack
	ep.mu.Unlock()
	for try := 0; try < udpOpenRetries; try++ {
		ep.sendControl(frameOpen, 0, nil)
		select {
		case id := <-ack:
			c.chanID.Store(id)
			ep.mu.Lock()
			ep.ackCh = nil
			ep.mu.Unlock()
			return c, nil
		case <-time.After(udpOpenTimeout):
		}
	}
	ep.close()
	c.inq.shutdown(true)
	return nil, fmt.Errorf("udp dial %s: no answer after %d attempts", addr, udpOpenRetries)
}

// UDPPair returns two conns joined by real loopback sockets — the UDP
// counterpart of HPIPair, and what core mints for Interface UDP. Both
// directions get impairers built from the same link config (same seed,
// schedule), mirroring HPIPairWithParams(l, l). The sockets are
// unconnected and source-validated, so the pair works without a
// handshake and without ICMP teardown races.
func UDPPair(link *UDPLink) (Conn, Conn, error) {
	cfg := link.withDefaults()
	loop := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)}
	sockA, err := net.ListenUDP("udp", loop)
	if err != nil {
		return nil, nil, fmt.Errorf("udp pair: %w", err)
	}
	sockB, err := net.ListenUDP("udp", loop)
	if err != nil {
		sockA.Close()
		return nil, nil, fmt.Errorf("udp pair: %w", err)
	}
	addrA := sockA.LocalAddr().(*net.UDPAddr)
	addrB := sockB.LocalAddr().(*net.UDPAddr)
	epA, err := newUDPEndpoint(sockA, false, cfg)
	if err != nil {
		sockB.Close()
		return nil, nil, fmt.Errorf("udp pair: %w", err)
	}
	epB, err := newUDPEndpoint(sockB, false, cfg)
	if err != nil {
		epA.close()
		return nil, nil, fmt.Errorf("udp pair: %w", err)
	}
	a, err := epA.newConn(1, addrKeyFromUDP(addrB), addrB)
	if err == nil {
		var b *udpConn
		b, err = epB.newConn(1, addrKeyFromUDP(addrA), addrA)
		if err == nil {
			epA.mu.Lock()
			epA.single = a
			epA.mu.Unlock()
			epB.mu.Lock()
			epB.single = b
			epB.mu.Unlock()
			return a, b, nil
		}
	}
	epA.close()
	epB.close()
	return nil, nil, fmt.Errorf("udp pair: %w", err)
}
