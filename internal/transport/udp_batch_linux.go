//go:build linux && (amd64 || arm64)

// Linux batch I/O for the UDP transport: sendmmsg(2)/recvmmsg(2)
// through the raw syscall layer, so a whole SendBatch (or a socket's
// backlog of arrivals) crosses the kernel boundary in one syscall.
// The stdlib syscall package carries the Msghdr/Iovec layouts and the
// syscall numbers for both 64-bit ports; golang.org/x/net would wrap
// the same calls, but the repo is dependency-free, so this speaks to
// the kernel directly. Sockets stay registered with the Go netpoller:
// each syscall runs inside a RawConn Read/Write callback with
// MSG_DONTWAIT, and EAGAIN parks the goroutine on the poller instead
// of spinning.
//
// Each outbound message is a two-element iovec — the 8-byte frame
// header in the outMsg itself, then the pooled payload — so headers
// are prepended without copying payload bytes. Inbound datagrams land
// directly in pooled slot buffers (one iovec each); kernel-reported
// MSG_TRUNC marks slot overflows per message.

package transport

import (
	"fmt"
	"net"
	"syscall"
	"unsafe"

	"ncs/internal/buf"
)

const batchSyscallsSupported = true

// mmsghdr mirrors struct mmsghdr for linux/{amd64,arm64}: a msghdr
// plus the per-message byte count, padded to 8-byte alignment.
type mmsghdr struct {
	Hdr syscall.Msghdr
	Len uint32
	_   [4]byte
}

// wireAddr is a pre-encoded raw sockaddr, built once per peer so the
// send path never re-marshals addresses.
type wireAddr struct {
	raw  syscall.RawSockaddrInet6 // large enough for v4 and v6
	size uint32
}

func encodeWireAddr(a *net.UDPAddr) (wireAddr, error) {
	var w wireAddr
	if ip4 := a.IP.To4(); ip4 != nil {
		sa := (*syscall.RawSockaddrInet4)(unsafe.Pointer(&w.raw))
		sa.Family = syscall.AF_INET
		p := (*[2]byte)(unsafe.Pointer(&sa.Port))
		p[0], p[1] = byte(a.Port>>8), byte(a.Port)
		copy(sa.Addr[:], ip4)
		w.size = syscall.SizeofSockaddrInet4
		return w, nil
	}
	ip6 := a.IP.To16()
	if ip6 == nil {
		return w, fmt.Errorf("udp: unencodable address %v", a)
	}
	w.raw.Family = syscall.AF_INET6
	p := (*[2]byte)(unsafe.Pointer(&w.raw.Port))
	p[0], p[1] = byte(a.Port>>8), byte(a.Port)
	copy(w.raw.Addr[:], ip6)
	w.size = syscall.SizeofSockaddrInet6
	return w, nil
}

// parseRawSockaddr converts a kernel-filled sockaddr to an addrKey
// without allocating.
func parseRawSockaddr(sa *syscall.RawSockaddrInet6, size uint32) (addrKey, bool) {
	var k addrKey
	switch sa.Family {
	case syscall.AF_INET:
		if size < syscall.SizeofSockaddrInet4 {
			return k, false
		}
		sa4 := (*syscall.RawSockaddrInet4)(unsafe.Pointer(sa))
		copy(k.ip[:4], sa4.Addr[:])
		p := (*[2]byte)(unsafe.Pointer(&sa4.Port))
		k.port = uint16(p[0])<<8 | uint16(p[1])
		k.v4 = true
		return k, true
	case syscall.AF_INET6:
		if size < syscall.SizeofSockaddrInet6 {
			return k, false
		}
		copy(k.ip[:], sa.Addr[:])
		p := (*[2]byte)(unsafe.Pointer(&sa.Port))
		k.port = uint16(p[0])<<8 | uint16(p[1])
		return k, true
	}
	return k, false
}

// batchIO holds the per-socket syscall scratch. Send fields are
// guarded by the endpoint's sendMu; recv fields belong to the reader
// goroutine. Scratch arrays grow to the largest batch seen and are
// reused for every syscall after that.
type batchIO struct {
	rc        syscall.RawConn
	connected bool

	shdrs []mmsghdr
	siov  [][2]syscall.Iovec

	rhdrs  []mmsghdr
	riov   []syscall.Iovec
	rnames []syscall.RawSockaddrInet6
}

func newBatchIO(sock *net.UDPConn, connected bool) (*batchIO, error) {
	rc, err := sock.SyscallConn()
	if err != nil {
		return nil, err
	}
	return &batchIO{rc: rc, connected: connected}, nil
}

// sendBatch transmits msgs in one sendmmsg (looping only on partial
// sends and EINTR). Caller holds sendMu and releases the payloads.
func (io *batchIO) sendBatch(msgs []outMsg) error {
	n := len(msgs)
	if n == 0 {
		return nil
	}
	if cap(io.shdrs) < n {
		io.shdrs = make([]mmsghdr, n)
		io.siov = make([][2]syscall.Iovec, n)
	}
	io.shdrs = io.shdrs[:n]
	io.siov = io.siov[:n]
	for i := range msgs {
		m := &msgs[i]
		iv := &io.siov[i]
		iv[0].Base = &m.hdr[0]
		iv[0].SetLen(udpHeaderSize)
		niov := 1
		if m.b != nil && len(m.b.B) > 0 {
			iv[1].Base = &m.b.B[0]
			iv[1].SetLen(len(m.b.B))
			niov = 2
		}
		h := &io.shdrs[i]
		*h = mmsghdr{}
		h.Hdr.Iov = &iv[0]
		h.Hdr.Iovlen = uint64(niov)
		if m.to != nil {
			h.Hdr.Name = (*byte)(unsafe.Pointer(&m.to.raw))
			h.Hdr.Namelen = m.to.size
		}
	}
	sent := 0
	for sent < n {
		var r1 uintptr
		var errno syscall.Errno
		werr := io.rc.Write(func(fd uintptr) bool {
			r1, _, errno = syscall.Syscall6(sysSENDMMSG, fd,
				uintptr(unsafe.Pointer(&io.shdrs[sent])), uintptr(n-sent),
				syscall.MSG_DONTWAIT, 0, 0)
			if errno == syscall.EAGAIN {
				mUDPEagain.Inc()
				return false
			}
			return true
		})
		mUDPSendSyscalls.Inc()
		if werr != nil {
			return werr
		}
		if errno != 0 {
			if errno == syscall.EINTR {
				continue
			}
			return errno
		}
		sent += int(r1)
	}
	return nil
}

// recvBatch blocks (on the netpoller) for at least one datagram, then
// drains up to len(slots) in a single recvmmsg. Fills meta[i] for each
// of the returned count; the slot buffers keep their full length — the
// caller reslices by meta[i].n.
func (io *batchIO) recvBatch(slots []*buf.Buffer, meta []recvMeta) (int, error) {
	n := len(slots)
	if cap(io.rhdrs) < n {
		io.rhdrs = make([]mmsghdr, n)
		io.riov = make([]syscall.Iovec, n)
		io.rnames = make([]syscall.RawSockaddrInet6, n)
	}
	io.rhdrs = io.rhdrs[:n]
	io.riov = io.riov[:n]
	io.rnames = io.rnames[:n]
	for i := range slots {
		io.riov[i].Base = &slots[i].B[0]
		io.riov[i].SetLen(len(slots[i].B))
		h := &io.rhdrs[i]
		*h = mmsghdr{}
		h.Hdr.Iov = &io.riov[i]
		h.Hdr.Iovlen = 1
		if !io.connected {
			h.Hdr.Name = (*byte)(unsafe.Pointer(&io.rnames[i]))
			h.Hdr.Namelen = syscall.SizeofSockaddrInet6
		}
	}
	var got int
	for {
		var r1 uintptr
		var errno syscall.Errno
		rerr := io.rc.Read(func(fd uintptr) bool {
			r1, _, errno = syscall.Syscall6(sysRECVMMSG, fd,
				uintptr(unsafe.Pointer(&io.rhdrs[0])), uintptr(n),
				syscall.MSG_DONTWAIT, 0, 0)
			if errno == syscall.EAGAIN {
				mUDPEagain.Inc()
				return false
			}
			return true
		})
		mUDPRecvSyscalls.Inc()
		if rerr != nil {
			return 0, rerr
		}
		if errno != 0 {
			if errno == syscall.EINTR {
				continue
			}
			return 0, errno
		}
		got = int(r1)
		break
	}
	for i := 0; i < got; i++ {
		h := &io.rhdrs[i]
		meta[i].n = int(h.Len)
		meta[i].trunc = h.Hdr.Flags&syscall.MSG_TRUNC != 0
		if !io.connected {
			meta[i].from, _ = parseRawSockaddr(&io.rnames[i], h.Hdr.Namelen)
		} else {
			meta[i].from = addrKey{}
		}
	}
	return got, nil
}
