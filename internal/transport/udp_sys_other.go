//go:build !unix

package transport

import "errors"

// Non-unix platforms report neither MSG_TRUNC nor ECONNREFUSED in a
// form this package can match; truncation then goes undetected (size
// both ends' MaxPacket consistently) and refused sends surface as
// ordinary errors.
const msgTruncFlag = 0

var errConnRefused = errors.New("transport: connection refused")
