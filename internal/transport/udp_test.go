package transport

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"ncs/internal/buf"
	"ncs/internal/netsim"
)

const udpTestTimeout = 5 * time.Second

func recvOne(t *testing.T, c Conn) []byte {
	t.Helper()
	p, err := c.RecvTimeout(udpTestTimeout)
	if err != nil {
		t.Fatalf("recv: %v", err)
	}
	return p
}

func TestUDPPairRoundTrip(t *testing.T) {
	a, b, err := UDPPair(nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	defer b.Close()

	if a.Kind() != UDP || !bytes.Equal([]byte(a.Kind().String()), []byte("UDP")) {
		t.Fatalf("kind = %v", a.Kind())
	}
	if a.Kind().Reliable() {
		t.Fatal("UDP must report unreliable")
	}

	// Plain sends, both directions.
	for i := 0; i < 50; i++ {
		msg := []byte(fmt.Sprintf("a->b %d", i))
		if err := a.Send(msg); err != nil {
			t.Fatalf("send: %v", err)
		}
		if got := recvOne(t, b); !bytes.Equal(got, msg) {
			t.Fatalf("got %q want %q", got, msg)
		}
	}
	if err := b.Send([]byte("b->a")); err != nil {
		t.Fatal(err)
	}
	if got := recvOne(t, a); string(got) != "b->a" {
		t.Fatalf("got %q", got)
	}

	// Pooled batch send: packet boundaries must be preserved, order kept.
	var batch []*buf.Buffer
	for i := 0; i < 40; i++ {
		bb := buf.GetCap(64)
		bb.B = append(bb.B, []byte(fmt.Sprintf("batch-%02d", i))...)
		batch = append(batch, bb)
	}
	if err := a.SendBatch(batch); err != nil {
		t.Fatalf("sendbatch: %v", err)
	}
	for i := 0; i < 40; i++ {
		rb, err := b.RecvBufTimeout(udpTestTimeout)
		if err != nil {
			t.Fatalf("recvbuf %d: %v", i, err)
		}
		if want := fmt.Sprintf("batch-%02d", i); string(rb.B) != want {
			t.Fatalf("got %q want %q", rb.B, want)
		}
		rb.Release()
	}
}

func TestUDPPairLargePackets(t *testing.T) {
	link := &UDPLink{MaxPacket: 16384}
	a, b, err := UDPPair(link)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	defer b.Close()
	if got := a.MaxPacket(); got != 16384 {
		t.Fatalf("MaxPacket = %d", got)
	}
	big := bytes.Repeat([]byte{0xAB}, 16384)
	if err := a.Send(big); err != nil {
		t.Fatal(err)
	}
	if got := recvOne(t, b); !bytes.Equal(got, big) {
		t.Fatalf("large packet mangled: %d bytes", len(got))
	}
	// Oversize must be rejected up front (the ref still consumed).
	over := buf.Get(16385)
	if err := a.SendBuf(over); err == nil {
		t.Fatal("oversize send accepted")
	}
}

func TestUDPDialListen(t *testing.T) {
	l, err := ListenUDP("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	type acc struct {
		c   Conn
		err error
	}
	accCh := make(chan acc, 2)
	go func() {
		c, err := l.Accept()
		accCh <- acc{c, err}
	}()

	d1, err := DialUDP(l.Addr(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer d1.Close()
	a1 := <-accCh
	if a1.err != nil {
		t.Fatal(a1.err)
	}
	defer a1.c.Close()

	// A second dialer demuxes onto the same socket as a distinct conn.
	go func() {
		c, err := l.Accept()
		accCh <- acc{c, err}
	}()
	d2, err := DialUDP(l.Addr(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	a2 := <-accCh
	if a2.err != nil {
		t.Fatal(a2.err)
	}
	defer a2.c.Close()

	if err := d1.Send([]byte("from-d1")); err != nil {
		t.Fatal(err)
	}
	if err := d2.Send([]byte("from-d2")); err != nil {
		t.Fatal(err)
	}
	if got := recvOne(t, a1.c); string(got) != "from-d1" {
		t.Fatalf("a1 got %q", got)
	}
	if got := recvOne(t, a2.c); string(got) != "from-d2" {
		t.Fatalf("a2 got %q", got)
	}
	if err := a1.c.Send([]byte("to-d1")); err != nil {
		t.Fatal(err)
	}
	if got := recvOne(t, d1); string(got) != "to-d1" {
		t.Fatalf("d1 got %q", got)
	}

	// Close propagation: the peer's queue drains then errors.
	d1.Close()
	deadline := time.Now().Add(udpTestTimeout)
	for {
		_, err := a1.c.RecvTimeout(50 * time.Millisecond)
		if err == ErrConnClosed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("accepted conn never saw peer close (last err %v)", err)
		}
	}
}

func TestUDPDialNoListener(t *testing.T) {
	if testing.Short() {
		t.Skip("waits out the full OPEN retry budget")
	}
	// A bound-but-silent socket: OPEN goes unanswered and Dial must
	// give up on its own rather than hang.
	l, err := ListenUDP("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr()
	l.Close()
	start := time.Now()
	if _, err := DialUDP(addr, nil); err == nil {
		t.Fatal("dial to dead port succeeded")
	}
	if elapsed := time.Since(start); elapsed > udpOpenRetries*udpOpenTimeout+2*time.Second {
		t.Fatalf("dial retry budget overran: %v", elapsed)
	}
}

func TestUDPPoller(t *testing.T) {
	a, b, err := UDPPair(nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	defer b.Close()

	p, ok := AsPoller(b)
	if !ok {
		t.Fatal("udpConn must implement Poller")
	}
	if bb, err := p.TryRecvBuf(); bb != nil || err != nil {
		t.Fatalf("empty TryRecvBuf = %v, %v", bb, err)
	}

	notify := make(chan struct{}, 16)
	p.SetRecvNotify(func() {
		select {
		case notify <- struct{}{}:
		default:
		}
	})
	// The hook fires once immediately on registration.
	select {
	case <-notify:
	case <-time.After(udpTestTimeout):
		t.Fatal("no registration notify")
	}

	if err := a.Send([]byte("ding")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-notify:
	case <-time.After(udpTestTimeout):
		t.Fatal("no arrival notify")
	}
	deadline := time.Now().Add(udpTestTimeout)
	for {
		bb, err := p.TryRecvBuf()
		if err != nil {
			t.Fatalf("TryRecvBuf: %v", err)
		}
		if bb != nil {
			if string(bb.B) != "ding" {
				t.Fatalf("got %q", bb.B)
			}
			bb.Release()
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("datagram never surfaced via TryRecvBuf")
		}
		time.Sleep(time.Millisecond)
	}

	// After close: drained queue reports ErrConnClosed, and the hook
	// fires for the death notification.
	b.Close()
	if _, err := p.TryRecvBuf(); err != ErrConnClosed {
		t.Fatalf("TryRecvBuf after close = %v", err)
	}
}

// TestUDPImpairerDeterminism is the seeded-replay contract: the same
// seed, impairment config, and packet sequence must reproduce the
// identical decision sequence — first at the WireImpairer level, then
// end to end through two independently built impaired pairs.
func TestUDPImpairerDeterminism(t *testing.T) {
	imp := netsim.Impairments{
		DupRate:       0.1,
		ReorderRate:   0.15,
		ReorderJitter: 200 * time.Microsecond,
		Burst:         netsim.GilbertElliott{PGoodBad: 0.05, PBadGood: 0.3, LossBad: 0.9, LossGood: 0.01},
	}
	w1 := netsim.NewWireImpairer(7, imp, nil)
	w2 := netsim.NewWireImpairer(7, imp, nil)
	for i := 0; i < 5000; i++ {
		d1, d2 := w1.Decide(), w2.Decide()
		if d1 != d2 {
			t.Fatalf("decision %d diverged: %+v vs %+v", i, d1, d2)
		}
	}
	if s1, s2 := w1.Stats(), w2.Stats(); s1 != s2 {
		t.Fatalf("stats diverged: %+v vs %+v", s1, s2)
	}
	if s := w1.Stats(); s.Sent != 5000 || s.Dropped == 0 || s.Duplicated == 0 || s.Reordered == 0 {
		t.Fatalf("implausible stats: %+v", s)
	}

	// End to end: two fresh pairs, same link config, same sends —
	// identical impairment stats on the sending conns.
	run := func() netsim.ImpairStats {
		link := &UDPLink{Seed: 11, Impair: imp}
		a, b, err := UDPPair(link)
		if err != nil {
			t.Fatal(err)
		}
		defer a.Close()
		defer b.Close()
		go func() {
			for {
				rb, err := b.RecvBuf()
				if err != nil {
					return
				}
				rb.Release()
			}
		}()
		payload := bytes.Repeat([]byte{0x5A}, 256)
		for i := 0; i < 200; i++ {
			var batch []*buf.Buffer
			for j := 0; j < 4; j++ {
				bb := buf.GetCap(256)
				bb.B = append(bb.B, payload...)
				batch = append(batch, bb)
			}
			if err := a.SendBatch(batch); err != nil {
				t.Fatalf("send %d: %v", i, err)
			}
		}
		st, ok := ImpairStats(a)
		if !ok {
			t.Fatal("no impair stats on UDP conn")
		}
		return st
	}
	s1, s2 := run(), run()
	if s1 != s2 {
		t.Fatalf("end-to-end impair stats diverged:\n%+v\n%+v", s1, s2)
	}
	if s1.Sent != 800 {
		t.Fatalf("sent %d packets, want 800", s1.Sent)
	}
}

func TestUDPImpairMidRun(t *testing.T) {
	a, b, err := UDPPair(nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	defer b.Close()

	if err := a.Send([]byte("before")); err != nil {
		t.Fatal(err)
	}
	if got := recvOne(t, b); string(got) != "before" {
		t.Fatalf("got %q", got)
	}

	// Partition the conn via the generic hook; sends vanish.
	if !Impair(a, netsim.Impairments{Partitioned: true}) {
		t.Fatal("Impair refused a UDP conn")
	}
	for i := 0; i < 10; i++ {
		if err := a.Send([]byte("lost")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := b.RecvTimeout(100 * time.Millisecond); err != ErrRecvTimeout {
		t.Fatalf("partitioned recv = %v", err)
	}
	st, ok := ImpairStats(a)
	if !ok || st.Dropped != 10 {
		t.Fatalf("impair stats = %+v, %v", st, ok)
	}

	// Heal and confirm delivery resumes.
	Impair(a, netsim.Impairments{})
	if err := a.Send([]byte("after")); err != nil {
		t.Fatal(err)
	}
	if got := recvOne(t, b); string(got) != "after" {
		t.Fatalf("got %q", got)
	}
}

// TestUDPReorderDelivers exercises the delay-queue path: with a 100%
// reorder rate every datagram takes the delayed route and must still
// arrive (order may differ; content set must match).
func TestUDPReorderDelivers(t *testing.T) {
	link := &UDPLink{
		Seed:   3,
		Impair: netsim.Impairments{ReorderRate: 1.0, ReorderJitter: 2 * time.Millisecond},
	}
	a, b, err := UDPPair(link)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	defer b.Close()

	const n = 64
	want := make(map[string]bool, n)
	for i := 0; i < n; i++ {
		msg := fmt.Sprintf("reorder-%02d", i)
		want[msg] = true
		if err := a.Send([]byte(msg)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		got := string(recvOne(t, b))
		if !want[got] {
			t.Fatalf("unexpected or duplicate %q", got)
		}
		delete(want, got)
	}
	if len(want) != 0 {
		t.Fatalf("%d messages never arrived", len(want))
	}
}

func TestUDPTruncationDropped(t *testing.T) {
	// Listener with small slots, dialer allowed to send bigger: the
	// oversized datagram must be counted and dropped, not delivered
	// short.
	l, err := ListenUDP("127.0.0.1:0", &UDPLink{MaxPacket: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	accCh := make(chan Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accCh <- c
		}
	}()
	d, err := DialUDP(l.Addr(), &UDPLink{MaxPacket: 2048})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	ac := <-accCh
	defer ac.Close()

	before := mUDPTrunc.Value()
	if err := d.Send(bytes.Repeat([]byte{1}, 1024)); err != nil {
		t.Fatal(err)
	}
	if _, err := ac.RecvTimeout(200 * time.Millisecond); err != ErrRecvTimeout {
		t.Fatalf("truncated datagram delivered: err=%v", err)
	}
	if mUDPTrunc.Value() == before {
		t.Fatal("truncation not counted")
	}
	// An in-budget datagram still flows.
	if err := d.Send([]byte("fits")); err != nil {
		t.Fatal(err)
	}
	if got := recvOne(t, ac); string(got) != "fits" {
		t.Fatalf("got %q", got)
	}
}

func TestUDPFrameParse(t *testing.T) {
	var h [udpHeaderSize]byte
	putUDPHeader(&h, frameData, 0xDEADBEEF)
	ftype, id, payload, err := parseUDPFrame(append(h[:], 'h', 'i'))
	if err != nil || ftype != frameData || id != 0xDEADBEEF || string(payload) != "hi" {
		t.Fatalf("round trip: %d %x %q %v", ftype, id, payload, err)
	}
	bad := [][]byte{
		nil,
		h[:4],                           // short
		{1, 2, 3, 4, 5, 6, 7, 8},        // bad magic
		{udpMagic, 0, 0, 0, 0, 0, 0, 0}, // zero type
		{udpMagic, frameTypeMax + 1, 0, 0, 0, 0, 0, 0}, // unknown type
		{udpMagic, frameData, 1, 0, 0, 0, 0, 0},        // reserved set
	}
	for i, p := range bad {
		if _, _, _, err := parseUDPFrame(p); err == nil {
			t.Fatalf("bad frame %d accepted", i)
		}
	}
}
