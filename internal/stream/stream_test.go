package stream

import (
	"sync"
	"testing"

	"ncs/internal/errctl"
	"ncs/internal/flowctl"
	"ncs/internal/packet"
)

// collector captures the control packets a mux emits, in order.
type collector struct {
	mu   sync.Mutex
	ctls []packet.Control
}

func (c *collector) emit(ctl packet.Control) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	body := make([]byte, len(ctl.Body))
	copy(body, ctl.Body)
	ctl.Body = body
	c.ctls = append(c.ctls, ctl)
	return true
}

func (c *collector) grants() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, ctl := range c.ctls {
		if ctl.Type == packet.CtrlStreamGrant {
			n++
		}
	}
	return n
}

func testMux(t *testing.T, initiator bool, sink *collector) *Mux {
	t.Helper()
	m := NewMux(initiator, Config{
		Flow: flowctl.Config{InitialCredits: 4, MaxCredits: 8},
		Err:  errctl.None,
	})
	m.SetEmitter(sink.emit)
	// Reap at test end so every stream's credit receiver drains its
	// refill-retry timers.
	t.Cleanup(m.ReapAll)
	return m
}

// TestMuxIDParity pins the collision-free id allocation: the dialing
// side opens odd ids, the accepting side even ids, so neither end ever
// allocates an id the other might mint concurrently.
func TestMuxIDParity(t *testing.T) {
	var sink collector
	dialer := testMux(t, true, &sink)
	acceptor := testMux(t, false, &sink)
	for want := uint32(1); want <= 5; want += 2 {
		st, ok := dialer.Open()
		if !ok || st.ID() != want {
			t.Fatalf("dialer Open = %v, %v; want id %d", st, ok, want)
		}
	}
	for want := uint32(2); want <= 6; want += 2 {
		st, ok := acceptor.Open()
		if !ok || st.ID() != want {
			t.Fatalf("acceptor Open = %v, %v; want id %d", st, ok, want)
		}
	}
}

// TestMuxAcceptQueue pins the create-on-first-frame discipline: a
// remote-parity id materialised by Get queues for PopAccept; a
// local-parity id does not; Take claims a stream so it never surfaces.
func TestMuxAcceptQueue(t *testing.T) {
	var sink collector
	m := testMux(t, false, &sink) // acceptor: odd ids are the peer's
	if _, ok := m.PopAccept(); ok {
		t.Fatal("fresh mux has a pending accept")
	}
	remote := m.Get(1)
	if remote.ID() != 1 {
		t.Fatalf("Get(1) id = %d", remote.ID())
	}
	got, ok := m.PopAccept()
	if !ok || got != remote {
		t.Fatalf("PopAccept = %v, %v; want the Get(1) stream", got, ok)
	}
	// A second Get of the same id must not re-queue it.
	if again := m.Get(1); again != remote {
		t.Fatal("Get(1) is not idempotent")
	}
	if _, ok := m.PopAccept(); ok {
		t.Fatal("known stream re-queued for accept")
	}
	// Take claims: stream 3 must never surface to PopAccept.
	m.Take(3)
	if _, ok := m.PopAccept(); ok {
		t.Fatal("Take-claimed stream surfaced to PopAccept")
	}
}

// TestMuxReapAll pins teardown: after ReapAll, Open refuses, stragglers
// materialised by Get arrive reaped (their frames are dropped), and the
// accept queue is gone.
func TestMuxReapAll(t *testing.T) {
	var sink collector
	m := testMux(t, false, &sink)
	m.Get(1) // queued for accept
	m.ReapAll()
	if !m.Closed() {
		t.Fatal("Closed() false after ReapAll")
	}
	if _, ok := m.Open(); ok {
		t.Fatal("Open succeeded on a closed mux")
	}
	if _, ok := m.PopAccept(); ok {
		t.Fatal("accept queue survived ReapAll")
	}
	straggler := m.Get(5)
	straggler.OnData(sdu(5, 0), []byte("late"), nil, func(packet.Control) bool { return true })
	if _, ok := straggler.TryPop(); ok {
		t.Fatal("reaped stream delivered a frame")
	}
}

// sdu builds the header of one single-SDU unreliable message.
func sdu(streamID, session uint32) packet.DataHeader {
	return packet.DataHeader{
		Flags:     packet.FlagEnd,
		SessionID: session,
		Seq:       0,
		Length:    4,
		StreamID:  streamID,
	}
}

// deliver runs one single-SDU message through the stream's receive
// path, as core's demux would.
func deliver(st *State, session uint32) {
	st.OnData(sdu(st.ID(), session), []byte{1, 2, 3, 4}, nil, func(packet.Control) bool { return true })
}

// TestBacklogGatesGrants is the per-stream isolation discipline in
// miniature: while the consumer keeps up, arrival-counted credit
// grants flow; the moment messages sit parked, further grants are
// withheld (latest wins); draining the backlog flushes exactly the
// withheld grant and reopens the window.
func TestBacklogGatesGrants(t *testing.T) {
	var sink collector
	m := testMux(t, false, &sink)
	st := m.Get(1)
	if _, ok := m.PopAccept(); !ok {
		t.Fatal("stream not queued for accept")
	}

	// Consumed promptly: arrivals spin the credit receiver and its
	// grants reach the wire.
	session := uint32(0)
	for i := 0; i < 8; i++ {
		deliver(st, session)
		session++
		if _, ok := st.TryPop(); !ok {
			t.Fatalf("message %d not delivered", i)
		}
	}
	flowing := sink.grants()
	if flowing == 0 {
		t.Fatal("no credit grants emitted for a promptly-consumed stream")
	}

	// Unconsumed: every further arrival parks, and no grant may escape
	// while the backlog stands.
	parked := 4
	for i := 0; i < parked; i++ {
		deliver(st, session)
		session++
	}
	if got := sink.grants(); got != flowing {
		t.Fatalf("%d grants emitted while the backlog stood (had %d)", got-flowing, parked)
	}

	// Draining flushes the withheld grant — one cumulative grant, not
	// one per suppressed emission.
	for i := 0; i < parked; i++ {
		if _, ok := st.TryPop(); !ok {
			t.Fatalf("parked message %d missing", i)
		}
	}
	if got := sink.grants(); got != flowing+1 {
		t.Fatalf("drain flushed %d grants; want exactly 1", got-flowing)
	}
	if _, ok := st.TryPop(); ok {
		t.Fatal("TryPop on a drained stream returned a message")
	}
}

// TestGrantRoundTrip pins the stream-scoped grant framing: the grant a
// receiver emits unwraps on the peer's sender as a connection-shaped
// cumulative credit grant for the same stream.
func TestGrantRoundTrip(t *testing.T) {
	var sink collector
	m := testMux(t, false, &sink)
	st := m.Get(1)
	deliver(st, 0)
	if _, ok := st.TryPop(); !ok {
		t.Fatal("message not delivered")
	}
	// Provoke grants until one is emitted (refill cadence is the
	// credit engine's business, not this test's).
	session := uint32(1)
	for sink.grants() == 0 && session < 64 {
		deliver(st, session)
		session++
		st.TryPop()
	}
	sink.mu.Lock()
	defer sink.mu.Unlock()
	if len(sink.ctls) == 0 {
		t.Fatal("no grant emitted after 64 consumed messages")
	}
	ctl := sink.ctls[0]
	if ctl.Type != packet.CtrlStreamGrant {
		t.Fatalf("emitted type %v; want CtrlStreamGrant", ctl.Type)
	}
	if len(ctl.Body) != packet.StreamGrantSize {
		t.Fatalf("grant body %d bytes; want %d", len(ctl.Body), packet.StreamGrantSize)
	}
	id := uint32(ctl.Body[0])<<24 | uint32(ctl.Body[1])<<16 | uint32(ctl.Body[2])<<8 | uint32(ctl.Body[3])
	if id != st.ID() {
		t.Fatalf("grant addressed to stream %d; want %d", id, st.ID())
	}
}
