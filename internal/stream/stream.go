// Package stream multiplexes a Connection into independent ordered
// message channels. Each stream carries its own receiver-advertised
// cumulative credit window (the credit engine of internal/flowctl,
// instantiated per stream), its own reliability sessions, and its own
// parked delivery queue — so an unconsumed stream exhausts only its
// own credits and can never head-of-line-block the connection or its
// sibling streams, the netchan/HTTP/2 discipline.
//
// The division of labour with internal/core: core owns the wire (send
// threads, receive demux, control routing) and calls into this package
// with parsed frames; this package owns everything per-stream — credit
// state, reassembly sessions, parking. Stream 0 is the connection's
// default channel and never appears here on the hot path: its flow
// control, delivery queue and alloc-free fast path stay exactly where
// they were.
//
// A stream's credit receiver observes SDUs on arrival — so a large
// message flows at wire speed, its window sliding as its SDUs land —
// but the grants it produces are only EMITTED while the stream's
// delivery backlog is empty. The moment a completed message parks
// unconsumed, further grants are withheld (latest wins — grants are
// cumulative) and the peer's sender runs out of window once the
// already-granted credits are spent; TryPop flushes the withheld grant
// when the consumer drains the backlog. A stream nobody reads
// therefore parks at most a credit window of SDUs while siblings flow
// on.
package stream

import (
	"sync"
	"sync/atomic"

	"ncs/internal/buf"
	"ncs/internal/errctl"
	"ncs/internal/flowctl"
	"ncs/internal/packet"
)

// maxTrackedSessions bounds a stream's inbound session table, exactly
// as internal/core bounds the connection-level (stream 0) table.
const maxTrackedSessions = 64

// Msg is a message delivered on a stream. Lost reports SDUs missing
// from an unreliable transfer, as core.Message does for stream 0.
type Msg struct {
	Data []byte
	Lost int
}

// Config fixes the per-stream protocol machinery: the credit window
// configuration each stream's flow control is built from, and the
// error-control algorithm its reassembly sessions run.
type Config struct {
	Flow flowctl.Config
	Err  errctl.Algorithm
}

// session wraps one inbound error-control session with its delivery
// state, mirroring core's recvSession.
type session struct {
	rcv       errctl.Receiver
	delivered bool
}

var sessionPool = sync.Pool{New: func() any { return new(session) }}

// State is one stream's receive- and send-side protocol state. Core
// routes frames here by the StreamID of their data header; the
// application side (core's Stream type) sends through FlowSender and
// receives through TryPop.
type State struct {
	id  uint32
	mux *Mux

	// sendMu serialises Send calls so the stream is an ordered channel:
	// a reliable message completes before the next begins.
	sendMu sync.Mutex

	// tx is the stream-lifetime transmit index fed to the credit
	// sender; rx the arrival index fed to the credit receiver.
	tx atomic.Uint32
	rx atomic.Uint32

	fcOnce sync.Once
	fcSend flowctl.Sender
	fcRecv flowctl.Receiver

	mu       sync.Mutex
	sessions map[uint32]*session
	sessAge  []uint32
	parked   []Msg
	nParked  atomic.Int32    // len(parked), readable without mu
	held     *packet.Control // latest grant withheld while backlogged
	local    bool            // opened here (vs announced by the peer)
	reaped   bool            // Reap ran: drop further frames
	remote   bool            // peer announced close

	bell chan struct{} // cap 1: rung when parked grows or state changes
}

// ID returns the stream identifier carried in the data headers.
func (s *State) ID() uint32 { return s.id }

// LockSend serialises message sends on the stream; core's Stream.Send
// holds it across the whole transfer so the channel stays ordered.
func (s *State) LockSend() { s.sendMu.Lock() }

// UnlockSend releases LockSend.
func (s *State) UnlockSend() { s.sendMu.Unlock() }

// TxCounter exposes the stream-lifetime transmit index core's send
// path feeds to this stream's credit sender.
func (s *State) TxCounter() *atomic.Uint32 { return &s.tx }

// Bell returns the stream's doorbell: rung (capacity-1, non-blocking)
// whenever a message parks or the stream's lifecycle changes, so a
// blocked receiver re-checks.
func (s *State) Bell() <-chan struct{} { return s.bell }

func (s *State) ring() {
	select {
	case s.bell <- struct{}{}:
	default:
	}
}

// ensureFC builds the stream's credit flow-control halves on first
// use. Streams always run the credit engine regardless of the
// connection-level algorithm: per-stream isolation is the point, and
// cumulative credit grants are the only scheme whose control traffic
// the stream layer wraps (CtrlStreamGrant).
func (s *State) ensureFC() {
	s.fcOnce.Do(func() {
		s.fcSend = flowctl.NewSender(flowctl.Credit, s.mux.cfg.Flow)
		s.fcRecv = flowctl.NewReceiver(flowctl.Credit, s.mux.cfg.Flow)
		// Timer-driven refresh grants go through the same backlog gate
		// as arrival grants: an unconsumed stream must not be re-granted
		// by the refresh path either.
		flowctl.SetEmitter(s.fcRecv, func(ctl packet.Control) bool {
			s.offerGrant(s.wrapGrant(ctl))
			return true
		})
	})
}

// FlowSender returns the stream's credit sender for core's transmit
// admission.
func (s *State) FlowSender() flowctl.Sender {
	s.ensureFC()
	return s.fcSend
}

// wrapGrant converts a connection-shaped credit grant emitted by the
// stream's receiver into its stream-scoped wire form.
func (s *State) wrapGrant(ctl packet.Control) packet.Control {
	body := make([]byte, 0, packet.StreamGrantSize)
	body = append(body, byte(s.id>>24), byte(s.id>>16), byte(s.id>>8), byte(s.id))
	body = append(body, ctl.Body...)
	return packet.Control{
		Type:      packet.CtrlStreamGrant,
		ConnID:    ctl.ConnID,
		SessionID: ctl.SessionID,
		Body:      body,
	}
}

// OnGrant feeds a CtrlStreamGrant addressed to this stream into its
// credit sender. The body is parsed synchronously; it may alias a
// pooled receive buffer the caller releases afterwards.
func (s *State) OnGrant(ctl packet.Control) {
	if len(ctl.Body) < packet.StreamGrantSize {
		return
	}
	s.ensureFC()
	s.fcSend.OnControl(packet.Control{
		Type:      packet.CtrlCreditGrant,
		ConnID:    ctl.ConnID,
		SessionID: ctl.SessionID,
		Body:      ctl.Body[4:],
	})
}

// OnData runs one arriving SDU through the stream's reassembly,
// emitting error-control acks (and a piggybacked stream credit grant)
// via emit, which must stamp the connection id. payload aliases ref,
// which the caller still owns; reassembly retains it as needed. When
// the SDU completes a message, OnData parks it on the stream's queue
// and rings the doorbell; receivers collect it with TryPop.
//
// Frames for a reaped (closed) stream are dropped: the peer was told
// via CtrlStreamClose, so anything still arriving is a straggler.
func (s *State) OnData(h packet.DataHeader, payload []byte, ref *buf.Buffer, emit func(packet.Control) bool) {
	s.mu.Lock()
	if s.reaped {
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()

	// One-SDU unreliable fast path, mirroring core's: no acks will
	// follow and no retransmission revives the session, so skip the
	// session table entirely. Park before crediting so an unconsumed
	// stream's grant is withheld, not emitted.
	if h.Seq == 0 && h.End() && s.mux.cfg.Err == errctl.None {
		out := make([]byte, len(payload))
		copy(out, payload)
		s.park(Msg{Data: out})
		s.creditArrival()
		return
	}

	s.mu.Lock()
	ss, ok := s.sessions[h.SessionID]
	if !ok {
		if s.sessions == nil {
			s.sessions = make(map[uint32]*session)
		}
		ss = sessionPool.Get().(*session)
		ss.rcv = errctl.NewReceiver(s.mux.cfg.Err)
		s.sessions[h.SessionID] = ss
		s.sessAge = append(s.sessAge, h.SessionID)
		s.pruneSessionsLocked()
	}
	s.mu.Unlock()

	acks, done := ss.rcv.OnData(h, payload, ref)
	for _, a := range acks {
		a.SessionID = h.SessionID
		if !emit(a) {
			return
		}
	}
	// Delivery before crediting: when this SDU completes a message that
	// nobody is consuming, the backlog gate below withholds the grant.
	if done && !ss.delivered {
		ss.delivered = true
		s.park(Msg{Data: ss.rcv.Message(), Lost: ss.rcv.LostSDUs()})
	}
	s.creditArrival()
	if len(acks) > 0 && s.nParked.Load() == 0 {
		// Piggyback the stream's credit state on the ack burst, exactly
		// as the connection level does — the consumed-count refresh
		// retires the peer's in-flight without a dedicated packet. Under
		// a backlog the refresh is withheld with the rest of the grants.
		s.ensureFC()
		if g, ok := flowctl.Piggyback(s.fcRecv); ok {
			g.SessionID = h.SessionID
			if !emit(s.wrapGrant(g)) {
				return
			}
		}
	}
}

// creditArrival advances the stream's credit receiver for one arrived
// SDU and offers whatever grants it produces to the backlog gate.
// Arrival counting (the connection-level discipline) is what lets a
// message larger than the credit window complete: its window slides as
// its own SDUs land, without waiting for anything to be consumed.
func (s *State) creditArrival() {
	s.ensureFC()
	idx := s.rx.Add(1) - 1
	for _, ctl := range s.fcRecv.OnData(idx) {
		s.offerGrant(s.wrapGrant(ctl))
	}
}

// offerGrant emits a grant while the stream's backlog is empty, and
// withholds it otherwise (latest wins — grants are cumulative), so an
// unconsumed stream stops being granted once its already-granted
// window is spent. TryPop flushes the withheld grant when the
// consumer drains the backlog.
func (s *State) offerGrant(ctl packet.Control) {
	s.mu.Lock()
	if s.reaped {
		s.mu.Unlock()
		return
	}
	if len(s.parked) > 0 {
		held := ctl
		s.held = &held
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
	s.mux.emit(ctl)
}

// park queues a completed message for TryPop. A park onto an already
// non-empty backlog is exactly the situation where single-flow
// delivery would have head-of-line-blocked the connection; count it.
func (s *State) park(m Msg) {
	s.mu.Lock()
	if s.reaped {
		s.mu.Unlock()
		return
	}
	if len(s.parked) > 0 {
		mHOLAvoided.Inc()
	}
	s.parked = append(s.parked, m)
	s.nParked.Store(int32(len(s.parked)))
	s.mu.Unlock()
	s.ring()
}

// TryPop takes the oldest parked message. Draining the backlog is what
// reopens the stream's credit flow: the last pop flushes the grant
// withheld while messages sat unconsumed, and the peer's stalled
// sender resumes.
func (s *State) TryPop() (Msg, bool) {
	if s.nParked.Load() == 0 {
		return Msg{}, false
	}
	s.mu.Lock()
	if len(s.parked) == 0 {
		s.mu.Unlock()
		return Msg{}, false
	}
	m := s.parked[0]
	s.parked[0] = Msg{}
	s.parked = s.parked[1:]
	if len(s.parked) == 0 {
		s.parked = nil // release the drained backing array
	}
	remaining := len(s.parked)
	s.nParked.Store(int32(remaining))
	var flush *packet.Control
	if remaining == 0 && s.held != nil && !s.reaped {
		flush = s.held
		s.held = nil
	}
	s.mu.Unlock()
	if remaining > 0 {
		// The doorbell is capacity-1: two parks may have rung it once.
		// Re-ring for the messages still queued so a second receiver
		// blocked on the bell is not stranded.
		s.ring()
	}
	if flush != nil {
		s.mux.emit(*flush)
	}
	return m, true
}

// Ready reports that a receiver need not keep waiting: a message is
// parked, or the stream's lifecycle ended (reaped locally or closed by
// the peer). Pump loops use it as their stop condition.
func (s *State) Ready() bool {
	if s.nParked.Load() > 0 {
		return true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reaped || s.remote
}

// Drained reports that the stream will never deliver again: it was
// closed (locally or by the peer) and no parked message remains.
func (s *State) Drained() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return (s.reaped || s.remote) && len(s.parked) == 0
}

// Closed reports that the stream was reaped locally.
func (s *State) Closed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reaped
}

// RemoteClosed reports that the peer announced close.
func (s *State) RemoteClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.remote
}

// RemoteClose handles the peer's CtrlStreamClose: in-flight sessions
// are abandoned (releasing the pooled buffers their reassembly
// retained — no more frames will complete them), the credit sender
// unblocks any admission waiter, and parked messages stay readable
// until drained.
func (s *State) RemoteClose() {
	s.mu.Lock()
	if s.remote || s.reaped {
		s.mu.Unlock()
		return
	}
	s.remote = true
	s.reapSessionsLocked()
	s.mu.Unlock()
	s.ensureFC() // build-then-close: FlowSender can never observe nil
	s.fcSend.Close()
	s.fcRecv.Close()
	s.ring()
}

// Reap tears the stream down: incomplete sessions release their
// retained buffers, parked messages are dropped, and both credit
// halves close (draining their retry timers, so the leak audits'
// flowctl.PendingTimers sees zero). Idempotent.
func (s *State) Reap() {
	s.mu.Lock()
	if s.reaped {
		s.mu.Unlock()
		return
	}
	s.reaped = true
	s.reapSessionsLocked()
	s.parked = nil
	s.nParked.Store(0)
	s.held = nil
	s.mu.Unlock()
	s.ensureFC() // build-then-close: FlowSender can never observe nil
	s.fcSend.Close()
	s.fcRecv.Close()
	mOpenStreams.Dec()
	s.ring()
}

func (s *State) reapSessionsLocked() {
	for id, ss := range s.sessions {
		if !ss.delivered {
			ss.rcv.Abandon()
		}
		delete(s.sessions, id)
		errctl.Recycle(ss.rcv)
		*ss = session{}
		sessionPool.Put(ss)
	}
	s.sessAge = nil
}

func (s *State) pruneSessionsLocked() {
	for len(s.sessAge) > maxTrackedSessions {
		victim := s.sessAge[0]
		s.sessAge = s.sessAge[1:]
		ss, ok := s.sessions[victim]
		if !ok {
			continue
		}
		if !ss.delivered {
			ss.rcv.Abandon()
		}
		delete(s.sessions, victim)
		errctl.Recycle(ss.rcv)
		*ss = session{}
		sessionPool.Put(ss)
	}
}
