package stream

import (
	"sync"

	"ncs/internal/packet"
)

// Mux is a connection's stream table: it allocates local stream ids,
// surfaces peer-initiated streams to AcceptStream, and owns teardown.
//
// ID allocation uses parity so the two ends never collide without a
// negotiation round trip: the connection's initiator (the dialing
// side) opens odd ids, the acceptor even ids. Stream 0 is the
// connection's default channel and never appears in the table.
type Mux struct {
	cfg       Config
	initiator bool

	// emit sends a control packet over the connection's control path,
	// stamping the connection id. Core installs it right after
	// construction, before any stream exists.
	emit func(ctl packet.Control) bool

	mu      sync.Mutex
	streams map[uint32]*State
	nextID  uint32
	accepts []*State
	closed  bool

	acceptBell chan struct{} // cap 1: rung when accepts grows or mux closes
}

// NewMux builds the stream table for one connection end.
func NewMux(initiator bool, cfg Config) *Mux {
	first := uint32(2)
	if initiator {
		first = 1
	}
	return &Mux{
		cfg:        cfg,
		initiator:  initiator,
		nextID:     first,
		acceptBell: make(chan struct{}, 1),
	}
}

// SetEmitter installs the connection's control emitter. Must be called
// before any stream is created; core does it inside the same critical
// section that publishes the mux.
func (m *Mux) SetEmitter(emit func(ctl packet.Control) bool) { m.emit = emit }

// localParity reports whether id is one this end allocates.
func (m *Mux) localParity(id uint32) bool {
	odd := id%2 == 1
	return odd == m.initiator
}

func (m *Mux) newStateLocked(id uint32, local bool) *State {
	st := &State{
		id:    id,
		mux:   m,
		local: local,
		bell:  make(chan struct{}, 1),
	}
	if m.streams == nil {
		m.streams = make(map[uint32]*State)
	}
	m.streams[id] = st
	mOpenStreams.Inc()
	return st
}

// Open allocates the next local stream id and creates its state. The
// caller announces it to the peer (CtrlStreamOpen) outside the lock.
// ok is false after Close.
func (m *Mux) Open() (st *State, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, false
	}
	id := m.nextID
	m.nextID += 2
	return m.newStateLocked(id, true), true
}

// Get returns the stream's state, creating it if the id is unknown —
// the create-on-first-frame path that makes CtrlStreamOpen advisory.
// A peer-initiated stream created here is queued for AcceptStream.
// After Close, Get returns a reaped placeholder whose OnData drops
// frames, so late stragglers die quietly.
func (m *Mux) Get(id uint32) *State {
	m.mu.Lock()
	if st, ok := m.streams[id]; ok {
		m.mu.Unlock()
		return st
	}
	st := m.newStateLocked(id, m.localParity(id))
	remote := !st.local
	closed := m.closed
	m.mu.Unlock()
	if closed {
		st.Reap()
		return st
	}
	if remote {
		m.mu.Lock()
		m.accepts = append(m.accepts, st)
		m.mu.Unlock()
		m.ringAccept()
	}
	return st
}

// Take returns the stream's state, creating it if unknown, and —
// unlike Get — claims it: a peer-initiated stream is removed from (or
// never enters) the accept queue. Layered protocols that communicate
// stream ids out of band (RPC streaming) use it so their streams do
// not surface to AcceptStream.
func (m *Mux) Take(id uint32) *State {
	m.mu.Lock()
	st, ok := m.streams[id]
	if ok {
		for i, a := range m.accepts {
			if a == st {
				m.accepts = append(m.accepts[:i], m.accepts[i+1:]...)
				break
			}
		}
	} else {
		st = m.newStateLocked(id, m.localParity(id))
	}
	closed := m.closed
	m.mu.Unlock()
	if closed {
		st.Reap()
	}
	return st
}

// Lookup returns the stream's state without creating it.
func (m *Mux) Lookup(id uint32) (*State, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.streams[id]
	return st, ok
}

// PopAccept takes the oldest not-yet-accepted peer-initiated stream.
func (m *Mux) PopAccept() (*State, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.accepts) == 0 {
		return nil, false
	}
	st := m.accepts[0]
	m.accepts[0] = nil
	m.accepts = m.accepts[1:]
	if len(m.accepts) == 0 {
		m.accepts = nil
	}
	return st, true
}

// HasAccept reports a peer-initiated stream is waiting for PopAccept,
// or that the mux closed (so a blocked acceptor re-checks and fails).
func (m *Mux) HasAccept() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.accepts) > 0 || m.closed
}

// AcceptBell is rung whenever a stream lands on the accept queue.
func (m *Mux) AcceptBell() <-chan struct{} { return m.acceptBell }

func (m *Mux) ringAccept() {
	select {
	case m.acceptBell <- struct{}{}:
	default:
	}
}

// Closed reports whether ReapAll ran.
func (m *Mux) Closed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.closed
}

// ReapAll tears every stream down (releasing retained buffers and
// draining credit retry timers) and marks the mux closed. Runs at
// Connection.Close; idempotent.
func (m *Mux) ReapAll() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	states := make([]*State, 0, len(m.streams))
	for _, st := range m.streams {
		states = append(states, st)
	}
	m.accepts = nil
	m.mu.Unlock()
	for _, st := range states {
		st.Reap()
	}
	m.ringAccept()
}
