package stream

import "ncs/internal/telemetry"

// The stream layer's instruments, named per the telemetry conventions
// (see internal/telemetry/doc.go, which catalogues them):
//
//   - stream.mux.open counts streams currently open across all
//     connections (created minus reaped).
//   - stream.send.credit_wait_total counts per-stream admission
//     timeouts: a sender found its stream's credit window exhausted
//     for a full wait interval (typically because the peer is not
//     consuming that stream) and had to resynchronise.
//   - stream.recv.hol_avoided_total counts messages parked onto an
//     already non-empty stream backlog — each one is a delivery that
//     would have head-of-line-blocked the connection's single flow
//     before streams existed.
var (
	mOpenStreams = telemetry.NewGauge("stream.mux.open")
	mCreditWait  = telemetry.NewCounter("stream.send.credit_wait_total")
	mHOLAvoided  = telemetry.NewCounter("stream.recv.hol_avoided_total")
)

// NoteCreditWait records one per-stream admission timeout; core's
// transmit path calls it when a stream send retries admission.
func NoteCreditWait() { mCreditWait.Inc() }
