// Package buf provides the pooled, reference-counted buffers that the
// NCS data and control pipelines thread from the transport layer up to
// the core threads, replacing the per-packet allocations and defensive
// copies the layers used to make at every boundary.
//
// # Ownership rules
//
// Every Buffer carries a reference count. The rules, which every layer
// of the pipeline follows:
//
//   - Get/GetCap return a Buffer owned by the caller with one
//     reference.
//   - Retain adds a reference; Release drops one. When the count
//     reaches zero the storage returns to its size-class pool.
//     Releasing below zero or retaining an already-released Buffer
//     panics — a refcounting bug, never a recoverable condition.
//   - transport.Conn.SendBuf and SendBatch CONSUME one reference per
//     buffer (they release after the wire accepts the bytes, or on
//     error). The caller must not touch a buffer after handing it to a
//     send path unless it retained it first.
//   - transport.Conn.RecvBuf returns a Buffer the caller OWNS and must
//     Release when done with every slice that aliases it.
//   - A parsed view (an SDU payload, a control-packet body) aliasing a
//     Buffer's storage may outlive the function that parsed it only if
//     the holder retains the Buffer — see Handoff — and releases it
//     when the view is dropped.
//
// The contents live in the exported field B, fasthttp-style, so the
// existing append-based Marshal helpers work unchanged:
//
//	b := buf.GetCap(packet.DataHeaderSize + len(payload))
//	b.B = hdr.Marshal(b.B[:0])
//	b.B = append(b.B, payload...)
//	conn.SendBuf(b) // consumes the reference
//
// Size classes are tiered around the pipeline's real packet sizes: the
// control plane (acks, credits), the default 4 KB SDU plus data
// header, and the 16/64 KB SDU tiers up to the AAL5 frame maximum.
// Larger requests are satisfied with plain allocations that skip the
// pools.
package buf

import (
	"fmt"
	"sync"
	"sync/atomic"

	"ncs/internal/telemetry"
)

// DefaultSDUStage is the capacity that comfortably stages a packet
// carrying the paper's default 4 KB SDU plus its headers and transport
// framing (data header 24 B, chunk header 5 B, AAL5 trailer/padding).
// Layers that pre-size a staging buffer for the common case (AAL5
// reassembly, chunk reassembly) request this so they land in the
// matching size class.
const DefaultSDUStage = 4*1024 + 128

// Size-class capacities. Each tier comfortably holds its namesake
// payload plus the packet headers and transport framing that ride
// along.
var tierSizes = [...]int{
	256,             // control packets: acks, bitmaps, credits, signaling
	DefaultSDUStage, // the paper's default 4 KB SDU + headers
	16*1024 + 128,   // mid-size SDUs
	64 * 1024,       // MaxSDUSize / AAL5 frame ceiling
}

var pools [len(tierSizes)]sync.Pool

// Buffer is a pooled, reference-counted byte buffer.
//
// B holds the current contents and may be re-sliced or appended to
// freely by the owner; appending past the pooled capacity falls back
// to the Go allocator (the oversized array is garbage collected, the
// original storage still returns to its pool on Release).
type Buffer struct {
	// B is the buffer contents.
	B []byte

	store []byte // pooled backing array (B usually aliases it)
	tier  int8   // size-class index; -1 when unpooled
	refs  atomic.Int32
}

// outstanding counts buffers handed out by Get/GetCap whose last
// reference has not yet been dropped (by Release or TakeBytes). It is
// the refcount audit hook behind Outstanding: a pipeline that releases
// everything it retained leaves the count exactly where it found it.
var outstanding atomic.Int64

// Outstanding reports the number of live pooled buffers: buffers
// created and not yet fully released. Leak-audit tests snapshot it
// before a scenario, drive the pipeline to quiescence, and assert the
// count returned to the snapshot — any difference is a retained
// reference that will pin pooled storage forever.
func Outstanding() int64 { return outstanding.Load() }

// Pool telemetry (see internal/telemetry doc.go for the catalogue).
// Hits and misses are counted at GetCap, the single choke point every
// buffer passes through; outstanding is exported as a capture-time
// gauge over the existing audit counter.
var (
	mPoolHit      = telemetry.NewCounter("buf.pool.hit_total")
	mPoolMiss     = telemetry.NewCounter("buf.pool.miss_total")
	mPoolOversize = telemetry.NewCounter("buf.pool.oversize_total")
	_             = telemetry.NewFuncGauge("buf.pool.outstanding", Outstanding)
)

// Get returns a buffer with len(b.B) == n, zero-filled only as far as
// pool reuse left it (callers overwrite, as with make without zeroing
// guarantees — the transport read paths fill it entirely).
func Get(n int) *Buffer {
	b := GetCap(n)
	b.B = b.B[:n]
	return b
}

// GetCap returns an empty buffer (len(b.B) == 0) with capacity at
// least n, for append-style marshalling.
func GetCap(n int) *Buffer {
	outstanding.Add(1)
	for t, size := range tierSizes {
		if n <= size {
			if v := pools[t].Get(); v != nil {
				mPoolHit.IncAt(uint32(t))
				b := v.(*Buffer)
				b.B = b.store[:0]
				b.refs.Store(1)
				return b
			}
			mPoolMiss.IncAt(uint32(t))
			store := make([]byte, tierSizes[t])
			b := &Buffer{store: store, B: store[:0], tier: int8(t)}
			b.refs.Store(1)
			return b
		}
	}
	// Oversized: plain allocation, never pooled.
	mPoolOversize.Inc()
	store := make([]byte, n)
	b := &Buffer{store: store, B: store[:0], tier: -1}
	b.refs.Store(1)
	return b
}

// Len returns len(b.B).
func (b *Buffer) Len() int { return len(b.B) }

// Retain adds a reference and returns b. It panics if the buffer has
// already been fully released: a released buffer may be concurrently
// reused through the pool, so resurrecting it is always a bug.
func (b *Buffer) Retain() *Buffer {
	if n := b.refs.Add(1); n <= 1 {
		panic(fmt.Sprintf("buf: retain of released buffer (refs=%d)", n-1))
	}
	return b
}

// Release drops one reference. When the last reference is dropped the
// storage returns to its size-class pool. Releasing more times than
// the buffer was retained panics.
func (b *Buffer) Release() {
	switch n := b.refs.Add(-1); {
	case n > 0:
		return
	case n < 0:
		panic(fmt.Sprintf("buf: over-release (refs=%d)", n))
	}
	outstanding.Add(-1)
	if b.tier >= 0 {
		b.B = nil // drop any oversized append spill before pooling
		pools[b.tier].Put(b)
	}
}

// Handoff retains b and returns it. Use it at the point where a parsed
// view aliasing b's storage — typically a control-packet body — escapes
// the goroutine that owns b: the receiving side takes over the returned
// reference and must Release it once the view is dropped. It replaces
// the defensive copy the receive loops used to make before a body
// crossed to another goroutine.
func (b *Buffer) Handoff() *Buffer { return b.Retain() }

// TakeBytes consumes the caller's reference and returns the contents
// as an ordinary heap slice with unbounded lifetime. When the caller
// held the last reference the backing array is simply handed over
// (escaping the pool, at no copy); if other references remain the
// contents are copied so later Releases cannot recycle storage the
// caller still aliases. It bridges the pooled pipeline to legacy
// []byte APIs.
func (b *Buffer) TakeBytes() []byte {
	p := b.B
	switch n := b.refs.Add(-1); {
	case n == 0:
		// Last reference: give the storage away instead of pooling it.
		outstanding.Add(-1)
		return p
	case n < 0:
		panic(fmt.Sprintf("buf: TakeBytes of released buffer (refs=%d)", n))
	}
	cp := make([]byte, len(p))
	copy(cp, p)
	return cp
}

// Refs reports the current reference count (for tests and debugging).
func (b *Buffer) Refs() int { return int(b.refs.Load()) }
