package buf

import (
	"sync"
	"testing"
)

func TestGetSizesAndTiers(t *testing.T) {
	for _, n := range []int{0, 1, 255, 256, 257, 4096, 4096 + 24, 16 * 1024, 64 * 1024, 80 * 1024} {
		b := Get(n)
		if len(b.B) != n {
			t.Fatalf("Get(%d): len=%d", n, len(b.B))
		}
		if cap(b.B) < n {
			t.Fatalf("Get(%d): cap=%d", n, cap(b.B))
		}
		if b.Refs() != 1 {
			t.Fatalf("Get(%d): refs=%d, want 1", n, b.Refs())
		}
		b.Release()
	}
}

func TestPoolReuse(t *testing.T) {
	// A released buffer's storage must come back from the pool. sync.Pool
	// may drop entries under GC pressure, so probe a few times rather
	// than asserting on a single round trip.
	reused := false
	for i := 0; i < 100 && !reused; i++ {
		b := Get(4096)
		p := &b.B[0]
		b.Release()
		c := Get(4096)
		if &c.B[0] == p {
			reused = true
		}
		c.Release()
	}
	if !reused {
		t.Fatal("pooled storage was never reused across Get/Release")
	}
}

func TestOversizedNeverPooled(t *testing.T) {
	b := Get(128 * 1024)
	if b.tier != -1 {
		t.Fatalf("oversized buffer assigned tier %d", b.tier)
	}
	b.Release() // must not panic or pool
}

func TestRetainReleaseCounts(t *testing.T) {
	b := Get(64)
	b.Retain()
	b.Retain()
	if got := b.Refs(); got != 3 {
		t.Fatalf("refs=%d, want 3", got)
	}
	b.Release()
	b.Release()
	if got := b.Refs(); got != 1 {
		t.Fatalf("refs=%d, want 1", got)
	}
	b.Release()
}

func TestOverReleasePanics(t *testing.T) {
	b := Get(64)
	b.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("second Release did not panic")
		}
	}()
	b.Release()
}

func TestRetainAfterReleasePanics(t *testing.T) {
	b := Get(64)
	b.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("Retain after full Release did not panic")
		}
	}()
	b.Retain()
}

func TestHandoffTransfersReference(t *testing.T) {
	b := Get(64)
	ref := b.Handoff()
	if ref != b {
		t.Fatal("Handoff must return the same buffer")
	}
	b.Release() // producer's reference
	if got := ref.Refs(); got != 1 {
		t.Fatalf("refs=%d after producer release, want 1", got)
	}
	ref.Release() // consumer's reference
}

func TestTakeBytesLastRef(t *testing.T) {
	b := Get(32)
	for i := range b.B {
		b.B[i] = byte(i)
	}
	p := b.B
	out := b.TakeBytes()
	if &out[0] != &p[0] {
		t.Fatal("TakeBytes with a sole reference must hand over the storage")
	}
}

func TestTakeBytesSharedCopies(t *testing.T) {
	b := Get(32)
	for i := range b.B {
		b.B[i] = byte(i)
	}
	b.Retain()
	out := b.TakeBytes() // one reference remains
	if &out[0] == &b.store[0] {
		t.Fatal("TakeBytes with outstanding references must copy")
	}
	for i := range out {
		if out[i] != byte(i) {
			t.Fatalf("copy diverges at %d", i)
		}
	}
	b.Release()
}

func TestConcurrentRetainRelease(t *testing.T) {
	const workers = 16
	const rounds = 2000
	b := Get(1024)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				b.Retain()
				_ = b.B[0]
				b.Release()
			}
		}()
	}
	wg.Wait()
	if got := b.Refs(); got != 1 {
		t.Fatalf("refs=%d after concurrent churn, want 1", got)
	}
	b.Release()
}

func TestAppendSpillKeepsPoolingSafe(t *testing.T) {
	b := Get(0)
	big := make([]byte, 128*1024)
	b.B = append(b.B, big...) // outgrows every tier: B leaves the store
	if len(b.B) != len(big) {
		t.Fatalf("append spill lost data: %d", len(b.B))
	}
	b.Release() // storage (not the spill) returns to the pool
	c := Get(16)
	if len(c.B) != 16 {
		t.Fatalf("pool corrupted after spill: len=%d", len(c.B))
	}
	c.Release()
}

func BenchmarkGetRelease4K(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bb := Get(4096)
		bb.Release()
	}
}

func BenchmarkRetainRelease(b *testing.B) {
	bb := Get(4096)
	defer bb.Release()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bb.Retain()
		bb.Release()
	}
}
