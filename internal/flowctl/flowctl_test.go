package flowctl

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ncs/internal/packet"
)

func TestAlgorithmString(t *testing.T) {
	want := map[Algorithm]string{
		None: "none", Credit: "credit", Window: "window", Rate: "rate",
		Algorithm(9): "Algorithm(9)",
	}
	for a, s := range want {
		if a.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(a), a.String(), s)
		}
	}
}

func TestNoneNeverBlocks(t *testing.T) {
	s := NewSender(None, Config{})
	defer s.Close()
	for i := 0; i < 1000; i++ {
		if err := s.Acquire(uint32(i)); err != nil {
			t.Fatal(err)
		}
	}
	r := NewReceiver(None, Config{})
	defer r.Close()
	if ctrl := r.OnData(0); ctrl != nil {
		t.Fatalf("None receiver produced control packets: %v", ctrl)
	}
}

func TestCreditSenderBlocksWithoutCredits(t *testing.T) {
	s := NewSender(Credit, Config{InitialCredits: 2})
	defer s.Close()

	if err := s.Acquire(0); err != nil {
		t.Fatal(err)
	}
	if err := s.Acquire(1); err != nil {
		t.Fatal(err)
	}

	acquired := make(chan error, 1)
	go func() { acquired <- s.Acquire(2) }()
	select {
	case <-acquired:
		t.Fatal("third Acquire succeeded with 2 credits")
	case <-time.After(20 * time.Millisecond):
	}

	// Grant a credit; the blocked Acquire must complete.
	s.OnControl(packet.Control{Type: packet.CtrlCredit, Body: packet.CreditBody(1)})
	select {
	case err := <-acquired:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Acquire still blocked after credit grant")
	}
}

func TestCreditCloseUnblocks(t *testing.T) {
	s := NewSender(Credit, Config{InitialCredits: 1})
	if err := s.Acquire(0); err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() { errCh <- s.Acquire(1) }()
	time.Sleep(10 * time.Millisecond)
	s.Close()
	if err := <-errCh; err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestCreditSenderIgnoresForeignControl(t *testing.T) {
	s := newCreditSender(Config{InitialCredits: 1}.withDefaults())
	defer s.Close()
	s.OnControl(packet.Control{Type: packet.CtrlAck, Body: packet.CreditBody(50)})
	if s.Credits() != 1 {
		t.Fatalf("credits = %d after foreign control, want 1", s.Credits())
	}
	s.OnControl(packet.Control{Type: packet.CtrlCredit, Body: nil}) // malformed
	if s.Credits() != 1 {
		t.Fatalf("credits = %d after malformed credit, want 1", s.Credits())
	}
}

func TestCreditReceiverDynamicGrants(t *testing.T) {
	clock := time.Unix(0, 0)
	now := func() time.Time { return clock }
	r := newCreditReceiver(Config{MaxCredits: 16, ActiveWindow: 10 * time.Millisecond, Now: now}.withDefaults())
	defer r.Close()

	// A rapid burst grows the grant.
	total := 0
	for i := 0; i < 40; i++ {
		clock = clock.Add(time.Millisecond)
		ctrl := r.OnData(uint32(i))
		if len(ctrl) != 1 || ctrl[0].Type != packet.CtrlCredit {
			t.Fatalf("OnData returned %v", ctrl)
		}
		n, err := packet.ParseCreditBody(ctrl[0].Body)
		if err != nil {
			t.Fatal(err)
		}
		total += int(n)
	}
	if r.GrantSize() <= 1 {
		t.Fatalf("grant did not grow under sustained activity: %d", r.GrantSize())
	}
	if r.GrantSize() > 16 {
		t.Fatalf("grant exceeded cap: %d", r.GrantSize())
	}
	if total <= 40 {
		t.Fatalf("active connection earned %d credits for 40 packets; want > 40", total)
	}

	// Going idle decays the grant back to the floor.
	clock = clock.Add(time.Second)
	r.OnData(99)
	if r.GrantSize() != 1 {
		t.Fatalf("grant after idle = %d, want 1", r.GrantSize())
	}
}

func TestWindowSenderBlocksAtWindowEdge(t *testing.T) {
	s := NewSender(Window, Config{WindowSize: 4})
	defer s.Close()

	for seq := uint32(0); seq < 4; seq++ {
		if err := s.Acquire(seq); err != nil {
			t.Fatal(err)
		}
	}
	blocked := make(chan error, 1)
	go func() { blocked <- s.Acquire(4) }()
	select {
	case <-blocked:
		t.Fatal("Acquire(4) succeeded beyond window")
	case <-time.After(20 * time.Millisecond):
	}

	// Cumulative ack of seq 1 slides the window to base=2: seq 4 < 2+4.
	s.OnControl(packet.Control{Type: packet.CtrlWinAck, Body: packet.CreditBody(1)})
	select {
	case err := <-blocked:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("window never slid after ack")
	}
}

func TestWindowReceiverCumulativeAcks(t *testing.T) {
	r := NewReceiver(Window, Config{})
	defer r.Close()

	ctrl := r.OnData(0)
	if len(ctrl) != 1 {
		t.Fatalf("want 1 control packet, got %d", len(ctrl))
	}
	n, _ := packet.ParseCreditBody(ctrl[0].Body)
	if n != 0 {
		t.Fatalf("ack = %d, want 0", n)
	}
	r.OnData(1)
	r.OnData(5)
	ctrl = r.OnData(3) // out of order: highest stays 5
	n, _ = packet.ParseCreditBody(ctrl[0].Body)
	if n != 5 {
		t.Fatalf("ack = %d, want 5", n)
	}
}

func TestRateSenderPacesTransmission(t *testing.T) {
	// 100 packets/sec, burst 1: ~10 ms between acquisitions.
	s := NewSender(Rate, Config{RatePerSec: 100, Burst: 1})
	defer s.Close()

	if err := s.Acquire(0); err != nil { // consumes the burst token
		t.Fatal(err)
	}
	start := time.Now()
	if err := s.Acquire(1); err != nil {
		t.Fatal(err)
	}
	if took := time.Since(start); took < 5*time.Millisecond {
		t.Fatalf("second Acquire returned in %v; pacing not enforced", took)
	}
}

func TestRateSenderAdjustsFromControl(t *testing.T) {
	s := newRateSender(Config{RatePerSec: 10, Burst: 1}.withDefaults())
	defer s.Close()
	s.OnControl(packet.Control{Type: packet.CtrlRate, Body: packet.CreditBody(5000)})
	if s.RateNow() != 5000 {
		t.Fatalf("rate = %v, want 5000", s.RateNow())
	}
	// Zero rate and malformed bodies are ignored.
	s.OnControl(packet.Control{Type: packet.CtrlRate, Body: packet.CreditBody(0)})
	if s.RateNow() != 5000 {
		t.Fatalf("rate changed on zero update: %v", s.RateNow())
	}
}

func TestRateReceiverAdvertisesRate(t *testing.T) {
	clock := time.Unix(0, 0)
	now := func() time.Time { return clock }
	r := newRateReceiver(Config{Now: now}.withDefaults())
	defer r.Close()

	// 64 packets over 64 ms → observed 1000 pkts/s → advertised 1250.
	var ctrls []packet.Control
	for i := 0; i < 64; i++ {
		clock = clock.Add(time.Millisecond)
		ctrls = append(ctrls, r.OnData(uint32(i))...)
	}
	if len(ctrls) != 1 {
		t.Fatalf("got %d rate updates, want 1 per window", len(ctrls))
	}
	if ctrls[0].Type != packet.CtrlRate {
		t.Fatalf("type = %v", ctrls[0].Type)
	}
	n, err := packet.ParseCreditBody(ctrls[0].Body)
	if err != nil {
		t.Fatal(err)
	}
	if n < 1100 || n > 1400 {
		t.Fatalf("advertised rate = %d, want ≈1250", n)
	}
	// The sender applies it.
	s := newRateSender(Config{RatePerSec: 10, Burst: 1}.withDefaults())
	defer s.Close()
	s.OnControl(ctrls[0])
	if s.RateNow() != float64(n) {
		t.Fatalf("sender rate = %v after update", s.RateNow())
	}
}

func TestRateReceiverObservesRate(t *testing.T) {
	clock := time.Unix(0, 0)
	now := func() time.Time { return clock }
	r := newRateReceiver(Config{Now: now}.withDefaults())
	defer r.Close()
	for i := 0; i < 100; i++ {
		r.OnData(uint32(i))
	}
	clock = clock.Add(time.Second)
	if got := r.ObservedRate(); got != 100 {
		t.Fatalf("observed rate = %v, want 100", got)
	}
}

// End-to-end property: a credit sender/receiver pair in a loop never
// exceeds outstanding = credits, and all packets eventually flow.
func TestCreditEndToEndConservation(t *testing.T) {
	cfg := Config{InitialCredits: 3, MaxCredits: 8}
	s := newCreditSender(cfg.withDefaults())
	r := newCreditReceiver(cfg.withDefaults())
	defer s.Close()
	defer r.Close()

	const total = 200
	var outstanding, maxOutstanding atomic.Int32

	var wg sync.WaitGroup
	acked := make(chan []packet.Control, total)

	wg.Add(1)
	go func() { // "receiver": consume and grant credits
		defer wg.Done()
		for i := 0; i < total; i++ {
			ctrls := <-acked
			outstanding.Add(-1)
			for _, c := range ctrls {
				s.OnControl(c)
			}
		}
	}()

	for i := 0; i < total; i++ {
		if err := s.Acquire(uint32(i)); err != nil {
			t.Fatal(err)
		}
		cur := outstanding.Add(1)
		for {
			prev := maxOutstanding.Load()
			if cur <= prev || maxOutstanding.CompareAndSwap(prev, cur) {
				break
			}
		}
		// OnData's scratch slice is only valid until the next call;
		// copy the packets out before shipping them across goroutines
		// (the runtime's receive loops enqueue the values the same way).
		acked <- append([]packet.Control(nil), r.OnData(uint32(i))...)
	}
	wg.Wait()

	if maxOutstanding.Load() == 0 {
		t.Fatal("no packets flowed")
	}
}
