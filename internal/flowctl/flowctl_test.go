package flowctl

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ncs/internal/packet"
)

func TestAlgorithmString(t *testing.T) {
	want := map[Algorithm]string{
		None: "none", Credit: "credit", Window: "window", Rate: "rate",
		Algorithm(9): "Algorithm(9)",
	}
	for a, s := range want {
		if a.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(a), a.String(), s)
		}
	}
}

func TestNoneNeverBlocks(t *testing.T) {
	s := NewSender(None, Config{})
	defer s.Close()
	for i := 0; i < 1000; i++ {
		if err := s.Acquire(uint32(i)); err != nil {
			t.Fatal(err)
		}
	}
	r := NewReceiver(None, Config{})
	defer r.Close()
	if ctrl := r.OnData(0); ctrl != nil {
		t.Fatalf("None receiver produced control packets: %v", ctrl)
	}
}

func TestCreditSenderBlocksWithoutCredits(t *testing.T) {
	s := NewSender(Credit, Config{InitialCredits: 2})
	defer s.Close()

	if err := s.Acquire(0); err != nil {
		t.Fatal(err)
	}
	if err := s.Acquire(1); err != nil {
		t.Fatal(err)
	}

	acquired := make(chan error, 1)
	go func() { acquired <- s.Acquire(2) }()
	select {
	case <-acquired:
		t.Fatal("third Acquire succeeded with 2 credits")
	case <-time.After(20 * time.Millisecond):
	}

	// A cumulative grant covering a third packet must complete the
	// blocked Acquire.
	s.OnControl(creditGrant(3))
	select {
	case err := <-acquired:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Acquire still blocked after credit grant")
	}
}

// TestCreditGrantIdempotent pins the cumulative-grant semantics that
// make the scheme safe under control-plane loss, duplication and
// reordering: re-delivered and stale grants change nothing.
func TestCreditGrantIdempotent(t *testing.T) {
	s := newCreditSender(Config{InitialCredits: 2}.withDefaults())
	defer s.Close()

	s.OnControl(creditGrant(10))
	if st := s.Stats(); st.Granted != 10 {
		t.Fatalf("granted = %d after grant of 10", st.Granted)
	}
	s.OnControl(creditGrant(10)) // duplicate
	s.OnControl(creditGrant(6))  // stale, reordered
	if st := s.Stats(); st.Granted != 10 {
		t.Fatalf("granted = %d after dup+stale grants, want 10", st.Granted)
	}
}

// TestCreditResyncMintsProbe checks credit resynchronisation: each
// Resync frees exactly one admission for a wedged sender — by writing
// off one presumed-lost in-flight packet when there is any, minting an
// emergency probe otherwise — and does nothing while admission is
// still available.
func TestCreditResyncMintsProbe(t *testing.T) {
	s := newCreditSender(Config{InitialCredits: 1}.withDefaults())
	defer s.Close()

	if !s.TryAcquire(0) {
		t.Fatal("initial credit not admitted")
	}
	if s.TryAcquire(1) {
		t.Fatal("admitted beyond the grant")
	}
	s.Resync()
	if !s.TryAcquire(1) {
		t.Fatal("probe minted by Resync did not admit")
	}
	if s.TryAcquire(2) {
		t.Fatal("one Resync admitted two packets")
	}
	st := s.Stats()
	if st.Used != 2 || st.Used > st.Granted+st.Probes+st.Lost {
		t.Fatalf("conservation violated after resync: %+v", st)
	}
	// A Resync with credit still available must not mint.
	s.OnControl(creditGrant(10))
	before := s.Stats().Probes
	s.Resync()
	if after := s.Stats().Probes; after != before {
		t.Fatalf("Resync minted a probe with credit available: %d -> %d", before, after)
	}
}

func TestCreditCloseUnblocks(t *testing.T) {
	s := NewSender(Credit, Config{InitialCredits: 1})
	if err := s.Acquire(0); err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() { errCh <- s.Acquire(1) }()
	time.Sleep(10 * time.Millisecond)
	s.Close()
	if err := <-errCh; err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestCreditSenderIgnoresForeignControl(t *testing.T) {
	s := newCreditSender(Config{InitialCredits: 1}.withDefaults())
	defer s.Close()
	s.OnControl(packet.Control{Type: packet.CtrlAck, Body: packet.CreditBody(50)})
	if st := s.Stats(); st.Granted != 1 {
		t.Fatalf("granted = %d after foreign control, want 1", st.Granted)
	}
	s.OnControl(packet.Control{Type: packet.CtrlCreditGrant, Body: []byte{1, 2, 3}}) // malformed
	if st := s.Stats(); st.Granted != 1 {
		t.Fatalf("granted = %d after malformed grant, want 1", st.Granted)
	}
	// The legacy v1 per-arrival CtrlCredit delta is likewise not a
	// cumulative grant and must not move the state.
	s.OnControl(packet.Control{Type: packet.CtrlCredit, Body: packet.CreditBody(50)})
	if st := s.Stats(); st.Granted != 1 {
		t.Fatalf("granted = %d after v1 credit delta, want 1", st.Granted)
	}
}

// TestCreditReceiverDynamicGrants drives the receiver with a steady
// 1 kpkt/s arrival stream and checks the rate-sized advertisement: the
// window grows toward (and is capped at) MaxCredits under sustained
// activity, refills land at the 75% threshold rather than per arrival,
// and an idle gap decays the advertisement back to the floor.
func TestCreditReceiverDynamicGrants(t *testing.T) {
	clock := time.Unix(0, 0)
	now := func() time.Time { return clock }
	r := newCreditReceiver(Config{InitialCredits: 4, MaxCredits: 16, ActiveWindow: 10 * time.Millisecond, Now: now}.withDefaults())
	defer r.Close()

	grants := 0
	var last packet.CreditGrant
	for i := 0; i < 40; i++ {
		clock = clock.Add(time.Millisecond)
		ctrl := r.OnData(uint32(i))
		if len(ctrl) == 0 {
			continue
		}
		if ctrl[0].Type != packet.CtrlCreditGrant {
			t.Fatalf("OnData returned %v", ctrl[0].Type)
		}
		g, err := packet.ParseCreditGrant(ctrl[0].Body)
		if err != nil {
			t.Fatal(err)
		}
		if g.Granted <= last.Granted {
			t.Fatalf("grant not monotonic: %d after %d", g.Granted, last.Granted)
		}
		last = g
		grants++
	}
	if grants == 0 || grants >= 40 {
		t.Fatalf("got %d grants for 40 arrivals; want threshold-based (0 < grants < 40)", grants)
	}
	// 1000 pkts/s over two 10ms activity windows → target 20, capped.
	if st := r.Stats(); st.Window != 16 {
		t.Fatalf("window = %d under sustained 1kpkt/s, want cap 16", st.Window)
	}

	// Going idle decays the advertisement back to the floor...
	clock = clock.Add(time.Second)
	r.OnData(99)
	if st := r.Stats(); st.Window != 4 {
		t.Fatalf("window after idle = %d, want floor 4", st.Window)
	}
	// ...but never retracts authority already advertised.
	if st := r.Stats(); st.Granted < last.Granted {
		t.Fatalf("granted retracted on idle: %d < %d", st.Granted, last.Granted)
	}
}

// TestCreditIdleCostsNoControlTraffic pins the idle-cost story: below
// the refill threshold OnData emits nothing, so a quiet stream sends
// no credit control packets at all.
func TestCreditIdleCostsNoControlTraffic(t *testing.T) {
	r := newCreditReceiver(Config{InitialCredits: 8}.withDefaults())
	defer r.Close()
	for i := 0; i < 5; i++ { // 5*4 < 8*3: below the 75% threshold
		if ctrl := r.OnData(uint32(i)); len(ctrl) != 0 {
			t.Fatalf("sub-threshold arrival %d emitted %v", i, ctrl)
		}
	}
}

// TestCreditPiggybackGrant checks the ack-piggyback path: the grant
// refreshes the consumed count (retiring sender in-flight) without
// raising new credit, and non-credit receivers decline.
func TestCreditPiggybackGrant(t *testing.T) {
	cfg := Config{InitialCredits: 4}.withDefaults()
	s := newCreditSender(cfg)
	r := newCreditReceiver(cfg)
	defer s.Close()
	defer r.Close()

	for i := 0; i < 2; i++ {
		if !s.TryAcquire(uint32(i)) {
			t.Fatalf("admission %d refused", i)
		}
		r.OnData(uint32(i))
	}
	ctrl, ok := Piggyback(r)
	if !ok {
		t.Fatal("credit receiver declined to piggyback")
	}
	s.OnControl(ctrl)
	st := s.Stats()
	if st.PeerConsumed != 2 {
		t.Fatalf("peer consumed = %d after piggyback, want 2", st.PeerConsumed)
	}
	if st.Inflight() != 0 {
		t.Fatalf("inflight = %d after piggyback, want 0", st.Inflight())
	}
	if _, ok := Piggyback(NewReceiver(Window, Config{})); ok {
		t.Fatal("window receiver offered a credit piggyback")
	}
}

// TestCreditControllerGatesInflight checks the congestion layer: with
// an AIMD controller, grants alone do not admit — in-flight must stay
// under the controller window, and consumed-count progress reopens it.
func TestCreditControllerGatesInflight(t *testing.T) {
	s := newCreditSender(Config{InitialCredits: 4, MaxCredits: 64, Controller: ControllerAIMD}.withDefaults())
	defer s.Close()
	s.OnControl(creditGrant(100)) // ample credit; the controller is the limit

	admitted := 0
	for s.TryAcquire(uint32(admitted)) {
		admitted++
	}
	if admitted != 4 { // cwnd starts at InitialCredits
		t.Fatalf("admitted %d with cwnd 4, want 4", admitted)
	}
	// The peer consumes everything: in-flight drops to zero and the
	// window grows, so admission resumes.
	s.OnControl(packet.Control{
		Type: packet.CtrlCreditGrant,
		Body: packet.AppendCreditGrant(nil, packet.CreditGrant{Granted: 100, Consumed: 4, Window: 16}),
	})
	if !s.TryAcquire(uint32(admitted)) {
		t.Fatal("no admission after the peer consumed the in-flight")
	}
	if st := s.Stats(); st.Controller != "aimd" {
		t.Fatalf("controller = %q, want aimd", st.Controller)
	}
}

func TestWindowSenderBlocksAtWindowEdge(t *testing.T) {
	s := NewSender(Window, Config{WindowSize: 4})
	defer s.Close()

	for seq := uint32(0); seq < 4; seq++ {
		if err := s.Acquire(seq); err != nil {
			t.Fatal(err)
		}
	}
	blocked := make(chan error, 1)
	go func() { blocked <- s.Acquire(4) }()
	select {
	case <-blocked:
		t.Fatal("Acquire(4) succeeded beyond window")
	case <-time.After(20 * time.Millisecond):
	}

	// Cumulative ack of seq 1 slides the window to base=2: seq 4 < 2+4.
	s.OnControl(packet.Control{Type: packet.CtrlWinAck, Body: packet.CreditBody(1)})
	select {
	case err := <-blocked:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("window never slid after ack")
	}
}

func TestWindowReceiverCumulativeAcks(t *testing.T) {
	r := NewReceiver(Window, Config{})
	defer r.Close()

	ctrl := r.OnData(0)
	if len(ctrl) != 1 {
		t.Fatalf("want 1 control packet, got %d", len(ctrl))
	}
	n, _ := packet.ParseCreditBody(ctrl[0].Body)
	if n != 0 {
		t.Fatalf("ack = %d, want 0", n)
	}
	r.OnData(1)
	r.OnData(5)
	ctrl = r.OnData(3) // out of order: highest stays 5
	n, _ = packet.ParseCreditBody(ctrl[0].Body)
	if n != 5 {
		t.Fatalf("ack = %d, want 5", n)
	}
}

func TestRateSenderPacesTransmission(t *testing.T) {
	// 100 packets/sec, burst 1: ~10 ms between acquisitions.
	s := NewSender(Rate, Config{RatePerSec: 100, Burst: 1})
	defer s.Close()

	if err := s.Acquire(0); err != nil { // consumes the burst token
		t.Fatal(err)
	}
	start := time.Now()
	if err := s.Acquire(1); err != nil {
		t.Fatal(err)
	}
	if took := time.Since(start); took < 5*time.Millisecond {
		t.Fatalf("second Acquire returned in %v; pacing not enforced", took)
	}
}

func TestRateSenderAdjustsFromControl(t *testing.T) {
	s := newRateSender(Config{RatePerSec: 10, Burst: 1}.withDefaults())
	defer s.Close()
	s.OnControl(packet.Control{Type: packet.CtrlRate, Body: packet.CreditBody(5000)})
	if s.RateNow() != 5000 {
		t.Fatalf("rate = %v, want 5000", s.RateNow())
	}
	// Zero rate and malformed bodies are ignored.
	s.OnControl(packet.Control{Type: packet.CtrlRate, Body: packet.CreditBody(0)})
	if s.RateNow() != 5000 {
		t.Fatalf("rate changed on zero update: %v", s.RateNow())
	}
}

func TestRateReceiverAdvertisesRate(t *testing.T) {
	clock := time.Unix(0, 0)
	now := func() time.Time { return clock }
	r := newRateReceiver(Config{Now: now}.withDefaults())
	defer r.Close()

	// 64 packets over 64 ms → observed 1000 pkts/s → advertised 1250.
	var ctrls []packet.Control
	for i := 0; i < 64; i++ {
		clock = clock.Add(time.Millisecond)
		ctrls = append(ctrls, r.OnData(uint32(i))...)
	}
	if len(ctrls) != 1 {
		t.Fatalf("got %d rate updates, want 1 per window", len(ctrls))
	}
	if ctrls[0].Type != packet.CtrlRate {
		t.Fatalf("type = %v", ctrls[0].Type)
	}
	n, err := packet.ParseCreditBody(ctrls[0].Body)
	if err != nil {
		t.Fatal(err)
	}
	if n < 1100 || n > 1400 {
		t.Fatalf("advertised rate = %d, want ≈1250", n)
	}
	// The sender applies it.
	s := newRateSender(Config{RatePerSec: 10, Burst: 1}.withDefaults())
	defer s.Close()
	s.OnControl(ctrls[0])
	if s.RateNow() != float64(n) {
		t.Fatalf("sender rate = %v after update", s.RateNow())
	}
}

func TestRateReceiverObservesRate(t *testing.T) {
	clock := time.Unix(0, 0)
	now := func() time.Time { return clock }
	r := newRateReceiver(Config{Now: now}.withDefaults())
	defer r.Close()
	for i := 0; i < 100; i++ {
		r.OnData(uint32(i))
	}
	clock = clock.Add(time.Second)
	if got := r.ObservedRate(); got != 100 {
		t.Fatalf("observed rate = %v, want 100", got)
	}
}

// End-to-end property: a credit sender/receiver pair in a loop keeps
// the conservation invariant (used ≤ granted+probes) at every step,
// and all packets eventually flow through the threshold-based refills.
func TestCreditEndToEndConservation(t *testing.T) {
	cfg := Config{InitialCredits: 3, MaxCredits: 8}
	s := newCreditSender(cfg.withDefaults())
	r := newCreditReceiver(cfg.withDefaults())
	defer s.Close()
	defer r.Close()

	const total = 200
	var outstanding, maxOutstanding atomic.Int32

	var wg sync.WaitGroup
	acked := make(chan []packet.Control, total)

	wg.Add(1)
	go func() { // "receiver": consume and grant credits
		defer wg.Done()
		for i := 0; i < total; i++ {
			ctrls := <-acked
			outstanding.Add(-1)
			for _, c := range ctrls {
				s.OnControl(c)
			}
		}
	}()

	for i := 0; i < total; i++ {
		if err := s.Acquire(uint32(i)); err != nil {
			t.Fatal(err)
		}
		cur := outstanding.Add(1)
		for {
			prev := maxOutstanding.Load()
			if cur <= prev || maxOutstanding.CompareAndSwap(prev, cur) {
				break
			}
		}
		// OnData's scratch slice is only valid until the next call;
		// copy the packets out before shipping them across goroutines
		// (the runtime's receive loops enqueue the values the same way).
		acked <- append([]packet.Control(nil), r.OnData(uint32(i))...)
		if st := s.Stats(); st.Used > st.Granted+st.Probes {
			t.Fatalf("conservation violated at %d: %+v", i, st)
		}
	}
	wg.Wait()

	if maxOutstanding.Load() == 0 {
		t.Fatal("no packets flowed")
	}
	st := s.Stats()
	if st.Used != total {
		t.Fatalf("used = %d, want %d", st.Used, total)
	}
	rst, ok := ReceiverStatsOf(r)
	if !ok || rst.Arrived != total {
		t.Fatalf("receiver arrived = %d (ok=%v), want %d", rst.Arrived, ok, total)
	}
}
