package flowctl

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"ncs/internal/packet"
)

// Seeded credit-conservation property test. Each seed drives one
// sender/receiver pair through a randomized schedule in which both the
// data plane and the grant plane lose, duplicate and reorder packets,
// and checks the conservation invariants after every event:
//
//   - Used ≤ Granted + Probes + Lost — the sender never transmits
//     beyond its authority (granted credits, resynchronisation probes,
//     and credits returned by written-off losses); this
//     is "granted == consumed + outstanding" with the outstanding side
//     solved for, stated so it survives loss.
//   - PeerConsumed + Lost ≤ Used — in-flight accounting never
//     underflows, however grants are duplicated or delayed.
//   - Receiver grants are monotonic and never exceed its arrivals by
//     more than MaxCredits — authority is bounded by real buffer space.
//
// Every seed ends with a clean-drain phase proving liveness: once the
// schedule stops losing packets, Resync-nudged retries must push fresh
// traffic through — no wedged state is reachable.
//
// The receiver gets no emitter, so no refill-retry timers are armed:
// the schedule is a pure state machine and runs deterministically
// under -race across all seeds (the frozen cfg.Now clock only advances
// when the schedule says so).

const propertySeeds = 1000

func TestCreditConservationProperty(t *testing.T) {
	for seed := 0; seed < propertySeeds; seed++ {
		t.Run(fmt.Sprintf("seed%04d", seed), func(t *testing.T) {
			t.Parallel()
			runCreditSchedule(t, int64(seed))
		})
	}
}

func runCreditSchedule(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	clock := time.Unix(0, 0)
	cfg := Config{
		InitialCredits: 1 + rng.Intn(4),
		MaxCredits:     8 + rng.Intn(57),
		ActiveWindow:   10 * time.Millisecond,
		Controller:     ControllerKind(rng.Intn(3)),
		Now:            func() time.Time { return clock },
	}.withDefaults()
	s := newCreditSender(cfg)
	r := newCreditReceiver(cfg)
	defer s.Close()
	defer r.Close()

	var (
		dataQ       []uint32         // data packets in flight
		ctrlQ       []packet.Control // grants in flight
		seq         uint32
		prevGranted uint64
	)
	check := func(stage string, step int) {
		t.Helper()
		st := s.Stats()
		if st.Used > st.Granted+st.Probes+st.Lost {
			t.Fatalf("seed %d %s step %d: conservation violated: used %d > granted %d + probes %d + lost %d",
				seed, stage, step, st.Used, st.Granted, st.Probes, st.Lost)
		}
		if st.PeerConsumed+st.Lost > st.Used {
			t.Fatalf("seed %d %s step %d: inflight underflow: consumed %d + lost %d > used %d",
				seed, stage, step, st.PeerConsumed, st.Lost, st.Used)
		}
		rst := r.Stats()
		if rst.Granted < prevGranted {
			t.Fatalf("seed %d %s step %d: receiver grant retracted: %d -> %d",
				seed, stage, step, prevGranted, rst.Granted)
		}
		prevGranted = rst.Granted
		if rst.Granted > rst.Arrived+uint64(cfg.MaxCredits) {
			t.Fatalf("seed %d %s step %d: over-grant: granted %d > arrived %d + max %d",
				seed, stage, step, rst.Granted, rst.Arrived, cfg.MaxCredits)
		}
	}

	// popRandom models reordering: in-flight packets overtake each other.
	popData := func() uint32 {
		i := rng.Intn(len(dataQ))
		v := dataQ[i]
		dataQ[i] = dataQ[len(dataQ)-1]
		dataQ = dataQ[:len(dataQ)-1]
		return v
	}
	popCtrl := func() packet.Control {
		i := rng.Intn(len(ctrlQ))
		v := ctrlQ[i]
		ctrlQ[i] = ctrlQ[len(ctrlQ)-1]
		ctrlQ = ctrlQ[:len(ctrlQ)-1]
		return v
	}
	deliverData := func(p uint32) {
		for _, c := range r.OnData(p) {
			ctrlQ = append(ctrlQ, c)
		}
	}

	const steps = 300
	for step := 0; step < steps; step++ {
		switch op := rng.Intn(10); {
		case op < 4: // attempt a send; on refusal, sometimes emulate the
			// transmit() path's AcquireTimeout-expiry → Resync retry.
			if s.TryAcquire(seq) {
				dataQ = append(dataQ, seq)
				seq++
			} else if rng.Intn(2) == 0 {
				s.Resync()
			}
		case op < 7: // data plane event: deliver, drop, or duplicate
			if len(dataQ) == 0 {
				continue
			}
			p := popData()
			switch d := rng.Intn(10); {
			case d < 2: // lost
			case d < 3: // duplicated: deliver now and leave a copy in flight
				deliverData(p)
				dataQ = append(dataQ, p)
			default:
				deliverData(p)
			}
		case op < 9: // grant plane event: deliver, drop, or duplicate
			if len(ctrlQ) == 0 {
				continue
			}
			c := popCtrl()
			switch d := rng.Intn(10); {
			case d < 2: // lost
			case d < 3: // duplicated
				s.OnControl(c)
				ctrlQ = append(ctrlQ, c)
			default:
				s.OnControl(c)
			}
		default: // time passes (drives rate sizing and idle decay)
			clock = clock.Add(time.Duration(rng.Intn(5_000_000)))
		}
		check("schedule", step)
	}

	// Clean drain: no more loss. Flush everything in flight, then prove
	// the pair can still move fresh traffic with Resync nudges standing
	// in for the sender's retransmission timeouts.
	for len(dataQ) > 0 {
		deliverData(popData())
		check("flush", len(dataQ))
	}
	for len(ctrlQ) > 0 {
		s.OnControl(popCtrl())
		check("flush", len(ctrlQ))
	}
	const fresh = 20
	delivered := 0
	for tries := 0; delivered < fresh && tries < 10_000; tries++ {
		if s.TryAcquire(seq) {
			deliverData(seq)
			seq++
			delivered++
			for len(ctrlQ) > 0 {
				s.OnControl(popCtrl())
			}
		} else {
			s.Resync()
		}
		clock = clock.Add(time.Millisecond)
		check("drain", tries)
	}
	if delivered < fresh {
		t.Fatalf("seed %d: recovery stalled after the clean drain: %d/%d fresh packets, sender %+v, receiver %+v",
			seed, delivered, fresh, s.Stats(), r.Stats())
	}
	if rst := r.Stats(); rst.Arrived == 0 {
		t.Fatalf("seed %d: no packets flowed at all", seed)
	}
}
