package flowctl

import (
	"math"
	"testing"
	"time"
)

func TestControllerKindString(t *testing.T) {
	want := map[ControllerKind]string{
		ControllerStatic:  "static",
		ControllerAIMD:    "aimd",
		ControllerRTT:     "rtt",
		ControllerKind(9): "ControllerKind(9)",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), s)
		}
	}
}

// TestNewControllerSelection pins the factory: the zero ControllerKind
// must yield the static (no-op) controller so existing configurations
// keep their pre-controller behaviour.
func TestNewControllerSelection(t *testing.T) {
	cfg := Config{}.withDefaults()
	for k, name := range map[ControllerKind]string{
		ControllerStatic: "static",
		ControllerAIMD:   "aimd",
		ControllerRTT:    "rtt",
	} {
		if got := NewController(k, cfg).Name(); got != name {
			t.Errorf("NewController(%v).Name() = %q, want %q", k, got, name)
		}
	}
	if got := NewController(ControllerKind(0), cfg).Name(); got != "static" {
		t.Errorf("zero ControllerKind built %q, want static", got)
	}
}

// TestStaticControllerNeverLimits: the static controller's window must
// be effectively unbounded and unmoved by any signal.
func TestStaticControllerNeverLimits(t *testing.T) {
	c := NewController(ControllerStatic, Config{}.withDefaults())
	if c.Window() < math.MaxInt32 {
		t.Fatalf("static window = %d", c.Window())
	}
	for i := 0; i < 100; i++ {
		c.OnLoss()
	}
	if c.Window() < math.MaxInt32 {
		t.Fatalf("static window moved on loss: %d", c.Window())
	}
}

// TestAIMDControllerDynamics: additive increase of one packet per
// window of acks, halving on loss, floor InitialCredits (so the
// congestion window can never starve the receiver's refill threshold
// of arrivals), cap MaxCredits.
func TestAIMDControllerDynamics(t *testing.T) {
	c := NewController(ControllerAIMD, Config{InitialCredits: 4, MaxCredits: 16}.withDefaults())
	if c.Window() != 4 {
		t.Fatalf("initial window = %d, want 4", c.Window())
	}
	// Roughly one window of acks buys one packet (the increment is
	// 1/cwnd of the growing window, so it takes a few extra acks to
	// cross the integer boundary).
	for i := 0; i < 5; i++ {
		c.OnAck(0)
	}
	if c.Window() != 5 {
		t.Fatalf("window after ~one window of acks = %d, want 5", c.Window())
	}
	// Sustained acks saturate at the cap.
	for i := 0; i < 1000; i++ {
		c.OnAck(0)
	}
	if c.Window() != 16 {
		t.Fatalf("window after sustained acks = %d, want cap 16", c.Window())
	}
	c.OnLoss()
	if c.Window() != 8 {
		t.Fatalf("window after loss = %d, want 8", c.Window())
	}
	// Repeated loss floors at InitialCredits, never below.
	for i := 0; i < 20; i++ {
		c.OnLoss()
	}
	if c.Window() != 4 {
		t.Fatalf("window after repeated loss = %d, want floor 4", c.Window())
	}
}

// TestRTTControllerDynamics: near-baseline RTT samples grow the
// window, inflated samples shrink it, and loss still halves it.
func TestRTTControllerDynamics(t *testing.T) {
	c := NewController(ControllerRTT, Config{InitialCredits: 4, MaxCredits: 64}.withDefaults())

	// Establish the baseline and grow on clean samples.
	for i := 0; i < 40; i++ {
		c.OnAck(time.Millisecond)
	}
	grown := c.Window()
	if grown <= 4 {
		t.Fatalf("window did not grow on baseline RTT: %d", grown)
	}

	// Inflated RTT (≥2× baseline) shrinks the window without loss.
	for i := 0; i < 10; i++ {
		c.OnAck(5 * time.Millisecond)
	}
	shrunk := c.Window()
	if shrunk >= grown {
		t.Fatalf("window did not shrink on inflated RTT: %d (was %d)", shrunk, grown)
	}

	// Moderate inflation (1.25×–2×) holds rather than oscillating.
	hold := c.Window()
	c.OnAck(time.Millisecond + time.Millisecond/2)
	if c.Window() != hold {
		t.Fatalf("window moved in the hold band: %d -> %d", hold, c.Window())
	}

	// Loss is still the strongest signal: halve, floored at
	// InitialCredits.
	before := c.Window()
	c.OnLoss()
	want := before / 2
	if want < 4 {
		want = 4
	}
	if c.Window() != want {
		t.Fatalf("loss: window %d -> %d, want %d", before, c.Window(), want)
	}

	// Unsampled acks (rtt 0) keep ack-clocked growth alive.
	g := NewController(ControllerRTT, Config{InitialCredits: 2, MaxCredits: 64}.withDefaults())
	for i := 0; i < 10; i++ {
		g.OnAck(0)
	}
	if g.Window() <= 2 {
		t.Fatalf("unsampled acks did not grow the window: %d", g.Window())
	}
}

// TestControllerWindowFloor: every adaptive controller floors at
// InitialCredits (here 1) and never reaches zero, or the connection
// deadlocks under sustained loss.
func TestControllerWindowFloor(t *testing.T) {
	for _, k := range []ControllerKind{ControllerAIMD, ControllerRTT} {
		c := NewController(k, Config{InitialCredits: 1}.withDefaults())
		for i := 0; i < 100; i++ {
			c.OnLoss()
		}
		if c.Window() < 1 {
			t.Fatalf("%v window fell to %d under sustained loss", k, c.Window())
		}
	}
}
