package flowctl

import (
	"fmt"
	"math"
	"time"
)

// Controller is the pluggable congestion controller that sits between
// the credits the receiver has granted and what the sender actually
// puts on the wire: a grant is necessary but not sufficient for
// admission — the sender also keeps its in-flight count under the
// controller's window. Grants protect the receiver's buffers;
// the controller protects the path.
//
// Implementations are NOT independently thread-safe: the credit sender
// invokes them with its own mutex held, which is the only caller.
type Controller interface {
	// Window is the maximum number of granted-but-unconsumed packets the
	// sender may keep in flight.
	Window() int
	// OnAck records evidence of delivery: the peer's cumulative consumed
	// count advanced. rtt is the sampled grant round-trip time, or 0
	// when no sample is available for this ack.
	OnAck(rtt time.Duration)
	// OnLoss records presumed loss (a credit resynchronisation fired).
	OnLoss()
	// Name identifies the controller in stats and reports.
	Name() string
}

// ControllerKind selects a congestion controller implementation. The
// zero value is ControllerStatic — grants alone gate transmission,
// which preserves the pre-controller behaviour.
type ControllerKind int

const (
	// ControllerStatic applies no congestion window: the receiver's
	// grants are the only limit.
	ControllerStatic ControllerKind = iota
	// ControllerAIMD grows the window by one packet per window of acks
	// and halves it on loss (TCP-Reno-style additive increase,
	// multiplicative decrease).
	ControllerAIMD
	// ControllerRTT adapts the window to grant round-trip time samples
	// (Vegas-style): grow while the path looks uncongested, back off
	// multiplicatively when RTT inflates well past the observed minimum.
	ControllerRTT
)

// String implements fmt.Stringer.
func (k ControllerKind) String() string {
	switch k {
	case ControllerStatic:
		return "static"
	case ControllerAIMD:
		return "aimd"
	case ControllerRTT:
		return "rtt"
	default:
		return fmt.Sprintf("ControllerKind(%d)", int(k))
	}
}

// NewController builds the selected controller. cfg must already have
// defaults applied.
func NewController(k ControllerKind, cfg Config) Controller {
	switch k {
	case ControllerAIMD:
		return &aimdController{cwnd: float64(cfg.InitialCredits), floor: cfg.InitialCredits, cap: cfg.MaxCredits}
	case ControllerRTT:
		return &rttController{cwnd: float64(cfg.InitialCredits), floor: cfg.InitialCredits, cap: cfg.MaxCredits}
	default:
		return staticController{}
	}
}

// staticController admits everything the receiver granted.
type staticController struct{}

func (staticController) Window() int         { return math.MaxInt32 }
func (staticController) OnAck(time.Duration) {}
func (staticController) OnLoss()             {}
func (staticController) Name() string        { return "static" }

// aimdController: additive increase (one packet per cwnd of acks),
// multiplicative decrease (halve on loss).
//
// The floor is InitialCredits, not one packet, and the reason is the
// receiver's refill threshold: consumed-count feedback arrives on
// refill grants, which the receiver issues only after ~75% of its
// advertised window (never below InitialCredits) has arrived. A
// congestion window smaller than that can starve the very feedback
// that would let it grow again — the sender stalls mid-message, times
// out, halves, and cwnd=1 becomes an absorbing state. Flooring at
// InitialCredits keeps the control loop self-clocking under any loss.
type aimdController struct {
	cwnd  float64
	floor int
	cap   int
}

func (c *aimdController) Window() int {
	return int(c.cwnd)
}

func (c *aimdController) OnAck(time.Duration) {
	c.cwnd += 1 / c.cwnd
	if c.cwnd > float64(c.cap) {
		c.cwnd = float64(c.cap)
	}
}

func (c *aimdController) OnLoss() {
	c.cwnd /= 2
	if c.cwnd < float64(c.floor) {
		c.cwnd = float64(c.floor)
	}
}

func (c *aimdController) Name() string { return "aimd" }

// rttController: delay-based adaptation. It tracks the minimum grant
// RTT ever observed as the uncongested baseline; samples near the
// baseline permit growth, samples far above it shrink the window
// before queues force actual loss. Loss still halves the window — a
// delay-based controller must not ignore the strongest signal.
// The window floor is InitialCredits for the same self-clocking reason
// as aimdController's.
type rttController struct {
	cwnd   float64
	floor  int
	cap    int
	minRTT time.Duration
}

func (c *rttController) Window() int {
	return int(c.cwnd)
}

func (c *rttController) OnAck(rtt time.Duration) {
	if rtt > 0 {
		if c.minRTT == 0 || rtt < c.minRTT {
			c.minRTT = rtt
		}
		if rtt > 2*c.minRTT {
			// Queueing delay: back off before loss does it for us.
			c.cwnd *= 0.8
			if c.cwnd < float64(c.floor) {
				c.cwnd = float64(c.floor)
			}
			return
		}
		if rtt >= c.minRTT+c.minRTT/4 {
			// Between 1.25× and 2× baseline: hold.
			return
		}
	}
	// Near-baseline sample (or an unsampled ack): grow like AIMD.
	c.cwnd += 1 / c.cwnd
	if c.cwnd > float64(c.cap) {
		c.cwnd = float64(c.cap)
	}
}

func (c *rttController) OnLoss() {
	c.cwnd /= 2
	if c.cwnd < float64(c.floor) {
		c.cwnd = float64(c.floor)
	}
}

func (c *rttController) Name() string { return "rtt" }
