// Package flowctl implements the per-connection flow control algorithms
// NCS lets programmers select at connection-establishment time (§3.3):
//
//   - Credit: the paper's default credit-based scheme (Figures 7–8),
//     rebuilt around receiver-advertised cumulative grants (credit.go).
//     The receiver sizes its advertised window from the observed
//     consumption rate, refills when the sender has consumed ≥75% of
//     the last grant, and piggybacks grants on error-control acks; an
//     idle stream costs zero control traffic. A pluggable congestion
//     Controller (controller.go: static, AIMD, RTT-adaptive) gates
//     in-flight data under the granted credits.
//   - Window: a classic sliding window with cumulative acknowledgments.
//   - Rate: a token-bucket pacing scheme; the receiver can push rate
//     adjustments over the control connection.
//   - None: no flow control (audio/video streams, Figure 2).
//
// The algorithms are pure protocol state machines: the sender half
// blocks in Acquire until transmission is admitted, and the receiver
// half turns packet arrivals into control packets for the caller to ship
// over the control connection. Packet I/O stays in the caller (the NCS
// Flow Control Thread or the fast-path procedures), which is what makes
// each algorithm independently testable and hot-swappable — "each
// algorithm will be implemented as a thread, [so] we can easily
// incorporate other advanced algorithms" (§3).
package flowctl

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ncs/internal/packet"
	"ncs/internal/telemetry"
)

// Flow-control telemetry (catalogue in internal/telemetry doc.go).
// Stall/wait counters tick once per admission that did not succeed on
// the first try; blocked_ns_total accumulates the time senders spent
// parked waiting for admission, whichever algorithm withheld it.
var (
	mWindowStall = telemetry.NewCounter("flowctl.window.stall_total")
	mCreditWait  = telemetry.NewCounter("flowctl.credit.wait_total")
	mBlockedNS   = telemetry.NewCounter("flowctl.send.blocked_ns_total")

	// Credit v2 instruments: cumulative credits granted by receivers,
	// packets consumed (delivered) under credit flow control, refill
	// grants issued (threshold crossings plus retry re-emissions),
	// grants piggybacked on error-control acks, and emergency probes
	// minted by credit resynchronisation.
	mGranted   = telemetry.NewCounter("flowctl.credit.granted_total")
	mConsumed  = telemetry.NewCounter("flowctl.credit.consumed_total")
	mRefill    = telemetry.NewCounter("flowctl.credit.refill_total")
	mPiggyback = telemetry.NewCounter("flowctl.credit.piggyback_total")
	mResync    = telemetry.NewCounter("flowctl.credit.resync_total")

	// hCreditWait distributes the time senders spent blocked waiting
	// for credit admission (only waits that did not succeed on the
	// first try are observed).
	hCreditWait = telemetry.NewHistogram("flowctl.send.credit_wait_ns")
)

// NoteFastPathWait records a §4.2 fast-path admission that had to pump
// control traffic before flow control admitted it. The fast path
// bypasses the Sender blocking entry points (it interleaves TryAcquire
// with control processing on the caller), so core reports the wait
// here to keep the instruments algorithm-owned.
func NoteFastPathWait(alg Algorithm, blocked time.Duration) {
	switch alg {
	case Credit:
		mCreditWait.Inc()
		hCreditWait.Observe(int64(blocked))
	case Window:
		mWindowStall.Inc()
	}
	mBlockedNS.Add(int64(blocked))
}

// Algorithm selects a flow control scheme.
type Algorithm int

// The flow control schemes of §3.3.
const (
	None Algorithm = iota + 1
	Credit
	Window
	Rate
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case None:
		return "none"
	case Credit:
		return "credit"
	case Window:
		return "window"
	case Rate:
		return "rate"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Errors returned by flow control senders.
var (
	// ErrClosed is returned by Acquire after Close.
	ErrClosed = errors.New("flowctl: closed")
	// ErrAcquireTimeout is returned by AcquireTimeout when flow control
	// withholds admission past the deadline — on lossy links this means
	// credits were lost with the packets that carried them.
	ErrAcquireTimeout = errors.New("flowctl: acquire timed out")
)

// Config tunes an algorithm instance.
type Config struct {
	// InitialCredits seeds the credit scheme ("only small credits are
	// assigned to each connection initially"). Default 4.
	InitialCredits int
	// MaxCredits caps the dynamically grown credit grant. Default 64.
	MaxCredits int
	// WindowSize is the sliding-window size. Default 16.
	WindowSize int
	// RatePerSec is the token rate for the rate scheme. Default 1000.
	RatePerSec float64
	// Burst is the token bucket depth. Default 8.
	Burst int
	// ActiveWindow is the interval over which the credit scheme judges
	// a connection active. Default 10 ms.
	ActiveWindow time.Duration
	// Controller selects the congestion controller the credit scheme
	// runs under its grants. The zero value is ControllerStatic (grants
	// alone gate transmission).
	Controller ControllerKind
	// Now injects a clock for tests; defaults to time.Now.
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.InitialCredits <= 0 {
		c.InitialCredits = 4
	}
	if c.MaxCredits <= 0 {
		c.MaxCredits = 64
	}
	if c.WindowSize <= 0 {
		c.WindowSize = 16
	}
	if c.RatePerSec <= 0 {
		c.RatePerSec = 1000
	}
	if c.Burst <= 0 {
		c.Burst = 8
	}
	if c.ActiveWindow <= 0 {
		c.ActiveWindow = 10 * time.Millisecond
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Sender is the transmit-side half of a flow control instance.
type Sender interface {
	// Acquire blocks until one packet with the given sequence number may
	// be transmitted.
	Acquire(seq uint32) error
	// TryAcquire is the non-blocking form: it reports whether
	// transmission of seq was admitted. The fast path (§4.2) uses it to
	// interleave credit processing with transmission on one goroutine.
	TryAcquire(seq uint32) bool
	// AcquireTimeout is Acquire with a deadline; it returns
	// ErrAcquireTimeout when admission does not arrive in time.
	AcquireTimeout(seq uint32, d time.Duration) error
	// Resync restores flow control state after presumed control-packet
	// loss (credit resynchronisation): lost data packets consumed
	// admissions whose grants will never return. Algorithms without
	// such state treat it as a no-op.
	Resync()
	// OnControl processes a control packet from the receiver.
	OnControl(c packet.Control)
	// Close unblocks Acquire with ErrClosed.
	Close()
}

// Receiver is the receive-side half.
type Receiver interface {
	// OnData records the arrival of the packet with the given sequence
	// number and returns any control packets that must travel back to
	// the sender. The returned slice is a scratch staging area valid
	// only until the next OnData call (the credit-return hot path runs
	// once per SDU, so it must not allocate); callers enqueue or
	// marshal the packets before returning to the receive loop, which
	// every NCS receive path does.
	OnData(seq uint32) []packet.Control
	// Close releases resources.
	Close()
}

// pendingTimers counts armed AcquireTimeout deadline timers across the
// package. The steady state is zero: admissions that succeed on the
// first try never arm a timer, and callers that are woken by an ack
// stop theirs on the way out. Leak audits (the TestMain in this package
// and in internal/core) assert it drains between tests.
var pendingTimers atomic.Int64

// PendingTimers reports the number of deadline timers currently armed
// by AcquireTimeout waiters. Exposed for leak audits and stats.
func PendingTimers() int64 { return pendingTimers.Load() }

// acquireTimeout runs a cond-wait loop with a deadline; try must be
// called with mu held and reports (admitted, closed).
//
// The deadline timer is created lazily, only once the first try fails:
// the overwhelming majority of acquisitions are admitted immediately
// (credits are in hand), and at 100k connections a per-send
// time.AfterFunc is pure churn on the runtime timer heap. A single
// timer serves the whole wait, and it is stopped — not abandoned — when
// an ack admits the waiter before the deadline.
func acquireTimeout(mu *sync.Mutex, cond *sync.Cond, d time.Duration, stalls *telemetry.Counter, hist *telemetry.Histogram, try func() (ok, closed bool)) error {
	mu.Lock()
	defer mu.Unlock()

	ok, closed := try()
	if closed {
		return ErrClosed
	}
	if ok {
		return nil
	}

	stalls.Inc()
	start := time.Now()
	defer func() {
		blocked := time.Since(start)
		mBlockedNS.Add(int64(blocked))
		if hist != nil {
			hist.Observe(int64(blocked))
		}
	}()

	deadline := start.Add(d)
	var timer *time.Timer
	defer func() {
		if timer != nil && timer.Stop() {
			pendingTimers.Add(-1)
		}
	}()
	for {
		if !time.Now().Before(deadline) {
			return ErrAcquireTimeout
		}
		if timer == nil {
			pendingTimers.Add(1)
			timer = time.AfterFunc(time.Until(deadline), func() {
				pendingTimers.Add(-1)
				mu.Lock()
				cond.Broadcast()
				mu.Unlock()
			})
		}
		cond.Wait()
		ok, closed := try()
		if closed {
			return ErrClosed
		}
		if ok {
			return nil
		}
	}
}

// NewSender builds the transmit side for the chosen algorithm.
func NewSender(alg Algorithm, cfg Config) Sender {
	cfg = cfg.withDefaults()
	switch alg {
	case Credit:
		return newCreditSender(cfg)
	case Window:
		return newWindowSender(cfg)
	case Rate:
		return newRateSender(cfg)
	default:
		return noneSender{}
	}
}

// NewReceiver builds the receive side for the chosen algorithm.
func NewReceiver(alg Algorithm, cfg Config) Receiver {
	cfg = cfg.withDefaults()
	switch alg {
	case Credit:
		return newCreditReceiver(cfg)
	case Window:
		return newWindowReceiver(cfg)
	case Rate:
		return newRateReceiver(cfg)
	default:
		return noneReceiver{}
	}
}

// ---------------------------------------------------------------------------
// None.

type noneSender struct{}

func (noneSender) Acquire(uint32) error                       { return nil }
func (noneSender) TryAcquire(uint32) bool                     { return true }
func (noneSender) AcquireTimeout(uint32, time.Duration) error { return nil }
func (noneSender) Resync()                                    {}
func (noneSender) OnControl(packet.Control)                   {}
func (noneSender) Close()                                     {}

type noneReceiver struct{}

func (noneReceiver) OnData(uint32) []packet.Control { return nil }
func (noneReceiver) Close()                         {}

// ---------------------------------------------------------------------------
// Window-based: sliding window with cumulative acknowledgments.

type windowSender struct {
	mu     sync.Mutex
	cond   *sync.Cond
	window int
	base   uint32 // lowest unacknowledged sequence number
	next   uint32 // next sequence number to admit
	closed bool
}

func newWindowSender(cfg Config) *windowSender {
	s := &windowSender{window: cfg.WindowSize}
	s.cond = sync.NewCond(&s.mu)
	return s
}

func (s *windowSender) Acquire(seq uint32) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if seq >= s.base+uint32(s.window) && !s.closed {
		mWindowStall.Inc()
		start := time.Now()
		for seq >= s.base+uint32(s.window) && !s.closed {
			s.cond.Wait()
		}
		mBlockedNS.Add(int64(time.Since(start)))
	}
	if s.closed {
		return ErrClosed
	}
	if seq >= s.next {
		s.next = seq + 1
	}
	return nil
}

func (s *windowSender) AcquireTimeout(seq uint32, d time.Duration) error {
	return acquireTimeout(&s.mu, s.cond, d, mWindowStall, nil, func() (ok, closed bool) {
		if s.closed {
			return false, true
		}
		if seq < s.base+uint32(s.window) {
			if seq >= s.next {
				s.next = seq + 1
			}
			return true, false
		}
		return false, false
	})
}

// Resync assumes outstanding packets (and their acks) were lost and
// reopens the window.
func (s *windowSender) Resync() {
	s.mu.Lock()
	if s.next > s.base {
		s.base = s.next
		s.cond.Broadcast()
	}
	s.mu.Unlock()
}

func (s *windowSender) TryAcquire(seq uint32) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || seq >= s.base+uint32(s.window) {
		return false
	}
	if seq >= s.next {
		s.next = seq + 1
	}
	return true
}

func (s *windowSender) OnControl(c packet.Control) {
	if c.Type != packet.CtrlWinAck {
		return
	}
	n, err := packet.ParseCreditBody(c.Body) // cumulative ack: 4-byte seq
	if err != nil {
		return
	}
	s.mu.Lock()
	if n+1 > s.base {
		s.base = n + 1
		s.cond.Broadcast()
	}
	s.mu.Unlock()
}

func (s *windowSender) Close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

type windowReceiver struct {
	mu      sync.Mutex
	highest uint32
	seen    bool
	out     [1]packet.Control
}

func newWindowReceiver(cfg Config) *windowReceiver { return &windowReceiver{} }

func (r *windowReceiver) OnData(seq uint32) []packet.Control {
	r.mu.Lock()
	if !r.seen || seq > r.highest {
		r.highest = seq
		r.seen = true
	}
	r.out[0] = packet.Control{
		Type: packet.CtrlWinAck,
		Body: packet.CreditBody(r.highest),
	}
	r.mu.Unlock()
	return r.out[:1]
}

func (r *windowReceiver) Close() {}

// ---------------------------------------------------------------------------
// Rate-based: token bucket pacing, receiver-adjustable.

type rateSender struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
	now    func() time.Time
	closed bool
}

func newRateSender(cfg Config) *rateSender {
	return &rateSender{
		rate:   cfg.RatePerSec,
		burst:  float64(cfg.Burst),
		tokens: float64(cfg.Burst),
		last:   cfg.Now(),
		now:    cfg.Now,
	}
}

func (s *rateSender) Acquire(uint32) error {
	for {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return ErrClosed
		}
		now := s.now()
		s.tokens += now.Sub(s.last).Seconds() * s.rate
		if s.tokens > s.burst {
			s.tokens = s.burst
		}
		s.last = now
		if s.tokens >= 1 {
			s.tokens--
			s.mu.Unlock()
			return nil
		}
		need := (1 - s.tokens) / s.rate
		s.mu.Unlock()
		time.Sleep(time.Duration(need * float64(time.Second)))
	}
}

// AcquireTimeout for the rate scheme simply bounds the pacing sleep.
func (s *rateSender) AcquireTimeout(seq uint32, d time.Duration) error {
	deadline := time.Now().Add(d)
	var blockedAt time.Time
	defer func() {
		if !blockedAt.IsZero() {
			mBlockedNS.Add(int64(time.Since(blockedAt)))
		}
	}()
	for {
		if s.TryAcquire(seq) {
			return nil
		}
		if blockedAt.IsZero() {
			blockedAt = time.Now()
		}
		s.mu.Lock()
		closed := s.closed
		need := (1 - s.tokens) / s.rate
		s.mu.Unlock()
		if closed {
			return ErrClosed
		}
		wait := time.Duration(need * float64(time.Second))
		if remain := time.Until(deadline); remain <= 0 {
			return ErrAcquireTimeout
		} else if wait > remain {
			wait = remain
		}
		time.Sleep(wait)
	}
}

// Resync is a no-op: token buckets refill by time, not by feedback.
func (s *rateSender) Resync() {}

func (s *rateSender) TryAcquire(uint32) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	now := s.now()
	s.tokens += now.Sub(s.last).Seconds() * s.rate
	if s.tokens > s.burst {
		s.tokens = s.burst
	}
	s.last = now
	if s.tokens < 1 {
		return false
	}
	s.tokens--
	return true
}

func (s *rateSender) OnControl(c packet.Control) {
	if c.Type != packet.CtrlRate {
		return
	}
	n, err := packet.ParseCreditBody(c.Body) // packets/sec, 4 bytes
	if err != nil || n == 0 {
		return
	}
	s.mu.Lock()
	s.rate = float64(n)
	s.mu.Unlock()
}

func (s *rateSender) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
}

// RateNow exposes the current rate for tests.
func (s *rateSender) RateNow() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rate
}

// rateReceiver measures the arrival rate and periodically pushes a
// CtrlRate adjustment to the sender: the receiver-driven adaptation of
// rate-based flow control. The advertised rate is the observed
// consumption rate plus 25% headroom, so a sender that outpaces the
// receiver is throttled toward what the receiver actually absorbs,
// while an under-driven connection is allowed to speed up.
type rateReceiver struct {
	mu    sync.Mutex
	count int
	since time.Time
	now   func() time.Time

	window      int // packets between adjustments
	windowCount int
	windowStart time.Time
	out         [1]packet.Control
}

func newRateReceiver(cfg Config) *rateReceiver {
	start := cfg.Now()
	return &rateReceiver{since: start, now: cfg.Now, window: 64, windowStart: start}
}

func (r *rateReceiver) OnData(seq uint32) []packet.Control {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.count++
	r.windowCount++
	if r.windowCount < r.window {
		return nil
	}
	now := r.now()
	elapsed := now.Sub(r.windowStart).Seconds()
	r.windowCount = 0
	r.windowStart = now
	if elapsed <= 0 {
		return nil
	}
	observed := float64(r.window) / elapsed
	advertised := uint32(observed * 1.25)
	if advertised == 0 {
		advertised = 1
	}
	r.out[0] = packet.Control{
		Type: packet.CtrlRate,
		Body: packet.CreditBody(advertised),
	}
	return r.out[:1]
}

func (r *rateReceiver) Close() {}

// ObservedRate reports arrivals per second since creation.
func (r *rateReceiver) ObservedRate() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	el := r.now().Sub(r.since).Seconds()
	if el <= 0 {
		return 0
	}
	return float64(r.count) / el
}
