package flowctl

import (
	"fmt"
	"os"
	"sync/atomic"
	"testing"
	"time"

	"ncs/internal/packet"
)

// creditGrant builds a CtrlCreditGrant packet carrying a cumulative
// grant authorising `granted` total packets.
func creditGrant(granted uint64) packet.Control {
	return packet.Control{
		Type: packet.CtrlCreditGrant,
		Body: packet.AppendCreditGrant(nil, packet.CreditGrant{Granted: granted}),
	}
}

// TestMain audits the package's hidden resources: the deadline timers
// AcquireTimeout arms while a sender waits for admission, and the
// refill-retry timers a credit receiver arms after issuing a grant
// that might be lost. Every waiter must stop its timer on the way out
// — whether it was admitted, timed out, or closed — and every retry
// chain must end (progress proof, Close, or the bounded retry count),
// so after the full test run the armed count must be back to zero. A
// nonzero count means acked windows or refills are leaving pending
// timers behind, which at scale is a slow leak on the runtime timer
// heap.
func TestMain(m *testing.M) {
	code := m.Run()
	if code == 0 {
		if err := awaitTimersDrained(2 * time.Second); err != nil {
			fmt.Fprintln(os.Stderr, err)
			code = 1
		}
	}
	os.Exit(code)
}

// awaitTimersDrained polls until no AcquireTimeout deadline timers
// remain armed, tolerating the brief tail of a timer whose callback is
// still running as its waiter returns.
func awaitTimersDrained(patience time.Duration) error {
	deadline := time.Now().Add(patience)
	for {
		n := PendingTimers()
		if n == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("leak audit: %d AcquireTimeout deadline timers still armed", n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestAcquireTimeoutFastPathArmsNoTimer checks the common case: when
// credits are in hand, AcquireTimeout admits immediately and never
// touches the timer heap.
func TestAcquireTimeoutFastPathArmsNoTimer(t *testing.T) {
	s := NewSender(Credit, Config{InitialCredits: 4})
	defer s.Close()
	before := PendingTimers()
	for seq := uint32(0); seq < 4; seq++ {
		if err := s.AcquireTimeout(seq, time.Second); err != nil {
			t.Fatalf("AcquireTimeout(%d): %v", seq, err)
		}
	}
	if after := PendingTimers(); after != before {
		t.Fatalf("fast-path admission armed timers: %d -> %d", before, after)
	}
}

// TestAcquireTimeoutStopsTimerOnAck verifies the ack path: a waiter
// blocked on an exhausted window arms exactly one deadline timer, and
// when a credit grant admits it before the deadline the timer is
// stopped rather than left to fire.
func TestAcquireTimeoutStopsTimerOnAck(t *testing.T) {
	s := NewSender(Credit, Config{InitialCredits: 1})
	defer s.Close()
	if err := s.AcquireTimeout(0, time.Second); err != nil {
		t.Fatalf("seed acquire: %v", err)
	}

	armed := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		close(armed)
		done <- s.AcquireTimeout(1, 10*time.Second)
	}()
	<-armed
	// Wait for the blocked sender to arm its deadline timer.
	deadline := time.Now().Add(2 * time.Second)
	for PendingTimers() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never armed a deadline timer")
		}
		time.Sleep(time.Millisecond)
	}

	s.OnControl(creditGrant(2))
	if err := <-done; err != nil {
		t.Fatalf("acked AcquireTimeout: %v", err)
	}
	// The long deadline timer must be gone the moment the waiter
	// returns, not 10 seconds from now.
	if n := PendingTimers(); n != 0 {
		t.Fatalf("ack left %d deadline timers armed", n)
	}
}

// TestAcquireTimeoutExpiredDeadline verifies the timeout path also
// drains its timer (AfterFunc fires, so Stop alone must not
// double-count).
func TestAcquireTimeoutExpiredDeadline(t *testing.T) {
	s := NewSender(Credit, Config{InitialCredits: 0, MaxCredits: 1})
	defer s.Close()
	// InitialCredits falls back to the default when <= 0, so drain it.
	for s.TryAcquire(0) {
	}
	if err := s.AcquireTimeout(1, 5*time.Millisecond); err != ErrAcquireTimeout {
		t.Fatalf("want ErrAcquireTimeout, got %v", err)
	}
	if err := awaitTimersDrained(time.Second); err != nil {
		t.Fatal(err)
	}
}

// ---------------------------------------------------------------------------
// Refill-retry timer audit. The blocking-wait audit above covers
// AcquireTimeout's deadline timers; these cover the other armed timer
// in the package — the credit receiver's refill-retry — and assert it
// drains on every exit path.

// refillReceiver builds a credit receiver with an emitter installed
// (the configuration that arms retry timers) and returns the emission
// counter.
func refillReceiver(cfg Config) (*creditReceiver, *int32) {
	r := newCreditReceiver(cfg.withDefaults())
	var emitted int32
	SetEmitter(r, func(packet.Control) bool {
		atomic.AddInt32(&emitted, 1)
		return true
	})
	return r, &emitted
}

// TestRefillWithoutEmitterArmsNoTimer: a receiver with no emitter (the
// fast path, and pure state-machine property tests) must never touch
// the timer heap, however many refills it issues.
func TestRefillWithoutEmitterArmsNoTimer(t *testing.T) {
	r := newCreditReceiver(Config{InitialCredits: 4}.withDefaults())
	defer r.Close()
	before := PendingTimers()
	for i := 0; i < 64; i++ {
		r.OnData(uint32(i))
	}
	if after := PendingTimers(); after != before {
		t.Fatalf("emitterless refills armed timers: %d -> %d", before, after)
	}
}

// TestRefillRetryStoppedByProgress: once the sender transmits beyond
// its pre-refill allowance the grant evidently arrived, and the retry
// timer must be stopped — not left to fire into a healthy connection.
func TestRefillRetryStoppedByProgress(t *testing.T) {
	r, _ := refillReceiver(Config{InitialCredits: 4, ActiveWindow: time.Minute})
	defer r.Close()

	// Arrival 3 crosses the 75% threshold (3*4 ≥ 4*3): refill, retry armed.
	for i := 0; i < 3; i++ {
		r.OnData(uint32(i))
	}
	if n := PendingTimers(); n == 0 {
		t.Fatal("refill did not arm a retry timer")
	}
	// grantProof is the pre-refill allowance (4); arrival #5 exceeds it.
	r.OnData(3)
	r.OnData(4)
	if n := PendingTimers(); n != 0 {
		t.Fatalf("sender progress left %d retry timers armed", n)
	}
}

// TestRefillRetryBoundedAndDrains: with no sender progress at all, the
// retry chain re-emits the grant exactly maxGrantRetries times with
// doubling backoff, then goes quiet with zero armed timers.
func TestRefillRetryBoundedAndDrains(t *testing.T) {
	r, emitted := refillReceiver(Config{InitialCredits: 4, ActiveWindow: time.Millisecond})
	defer r.Close()

	for i := 0; i < 3; i++ {
		r.OnData(uint32(i))
	}
	// Backoffs 4+8+16 ms; give the chain room on a loaded runner.
	deadline := time.Now().Add(2 * time.Second)
	for atomic.LoadInt32(emitted) < maxGrantRetries {
		if time.Now().After(deadline) {
			t.Fatalf("retry chain stalled: %d emissions, want %d", atomic.LoadInt32(emitted), maxGrantRetries)
		}
		time.Sleep(time.Millisecond)
	}
	if err := awaitTimersDrained(time.Second); err != nil {
		t.Fatal(err)
	}
	if n := atomic.LoadInt32(emitted); n != maxGrantRetries {
		t.Fatalf("retry chain emitted %d grants, want exactly %d", n, maxGrantRetries)
	}
}

// TestRefillRetryStoppedByClose: Close while a retry is armed must
// drain it immediately.
func TestRefillRetryStoppedByClose(t *testing.T) {
	r, _ := refillReceiver(Config{InitialCredits: 4, ActiveWindow: time.Minute})
	for i := 0; i < 3; i++ {
		r.OnData(uint32(i))
	}
	if n := PendingTimers(); n == 0 {
		t.Fatal("refill did not arm a retry timer")
	}
	r.Close()
	if err := awaitTimersDrained(time.Second); err != nil {
		t.Fatal(err)
	}
}
