package flowctl

import (
	"fmt"
	"os"
	"testing"
	"time"

	"ncs/internal/packet"
)

// creditGrant builds a CtrlCredit packet granting n credits.
func creditGrant(n uint32) packet.Control {
	return packet.Control{Type: packet.CtrlCredit, Body: packet.CreditBody(n)}
}

// TestMain audits the package's only hidden resource: the deadline
// timers AcquireTimeout arms while a sender waits for admission. Every
// waiter must stop its timer on the way out — whether it was admitted,
// timed out, or closed — so after the full test run the armed count
// must be back to zero. A nonzero count means acked windows are leaving
// pending timers behind, which at scale is a slow leak on the runtime
// timer heap.
func TestMain(m *testing.M) {
	code := m.Run()
	if code == 0 {
		if err := awaitTimersDrained(2 * time.Second); err != nil {
			fmt.Fprintln(os.Stderr, err)
			code = 1
		}
	}
	os.Exit(code)
}

// awaitTimersDrained polls until no AcquireTimeout deadline timers
// remain armed, tolerating the brief tail of a timer whose callback is
// still running as its waiter returns.
func awaitTimersDrained(patience time.Duration) error {
	deadline := time.Now().Add(patience)
	for {
		n := PendingTimers()
		if n == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("leak audit: %d AcquireTimeout deadline timers still armed", n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestAcquireTimeoutFastPathArmsNoTimer checks the common case: when
// credits are in hand, AcquireTimeout admits immediately and never
// touches the timer heap.
func TestAcquireTimeoutFastPathArmsNoTimer(t *testing.T) {
	s := NewSender(Credit, Config{InitialCredits: 4})
	defer s.Close()
	before := PendingTimers()
	for seq := uint32(0); seq < 4; seq++ {
		if err := s.AcquireTimeout(seq, time.Second); err != nil {
			t.Fatalf("AcquireTimeout(%d): %v", seq, err)
		}
	}
	if after := PendingTimers(); after != before {
		t.Fatalf("fast-path admission armed timers: %d -> %d", before, after)
	}
}

// TestAcquireTimeoutStopsTimerOnAck verifies the ack path: a waiter
// blocked on an exhausted window arms exactly one deadline timer, and
// when a credit grant admits it before the deadline the timer is
// stopped rather than left to fire.
func TestAcquireTimeoutStopsTimerOnAck(t *testing.T) {
	s := NewSender(Credit, Config{InitialCredits: 1})
	defer s.Close()
	if err := s.AcquireTimeout(0, time.Second); err != nil {
		t.Fatalf("seed acquire: %v", err)
	}

	armed := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		close(armed)
		done <- s.AcquireTimeout(1, 10*time.Second)
	}()
	<-armed
	// Wait for the blocked sender to arm its deadline timer.
	deadline := time.Now().Add(2 * time.Second)
	for PendingTimers() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never armed a deadline timer")
		}
		time.Sleep(time.Millisecond)
	}

	s.OnControl(creditGrant(1))
	if err := <-done; err != nil {
		t.Fatalf("acked AcquireTimeout: %v", err)
	}
	// The long deadline timer must be gone the moment the waiter
	// returns, not 10 seconds from now.
	if n := PendingTimers(); n != 0 {
		t.Fatalf("ack left %d deadline timers armed", n)
	}
}

// TestAcquireTimeoutExpiredDeadline verifies the timeout path also
// drains its timer (AfterFunc fires, so Stop alone must not
// double-count).
func TestAcquireTimeoutExpiredDeadline(t *testing.T) {
	s := NewSender(Credit, Config{InitialCredits: 0, MaxCredits: 1})
	defer s.Close()
	// InitialCredits falls back to the default when <= 0, so drain it.
	for s.TryAcquire(0) {
	}
	if err := s.AcquireTimeout(1, 5*time.Millisecond); err != ErrAcquireTimeout {
		t.Fatalf("want ErrAcquireTimeout, got %v", err)
	}
	if err := awaitTimersDrained(time.Second); err != nil {
		t.Fatal(err)
	}
}
