// Credit-based flow control v2: receiver-advertised cumulative grants.
//
// The receiver authorises transmission by advertising a cumulative
// grant — "you may send your Granted-th packet" — sized from the
// observed consumption rate, refilled when the sender has consumed 75%
// of the last advertisement, and piggybacked on error-control acks.
// All wire values are cumulative connection-lifetime totals, so grants
// are idempotent: the sender keeps the maximum it has seen, and loss,
// duplication or reordering of grant packets can delay but never
// corrupt the credit state. An idle stream crosses no thresholds and
// therefore costs zero control traffic.
//
// Between the grant and the wire sits a pluggable congestion
// Controller (controller.go): admission requires both an unused grant
// (receiver has buffer space) and in-flight room under the
// controller's window (path has capacity).
package flowctl

import (
	"sync"
	"time"

	"ncs/internal/packet"
)

const (
	// rttRingSize is the number of admission timestamps the sender
	// retains for grant round-trip sampling. Consumption advancing by
	// more than the ring in one grant simply yields an unsampled ack.
	rttRingSize = 64
	// maxGrantRetries bounds the receiver's refill-retry timer: after
	// this many unacknowledged re-emissions the receiver goes quiet and
	// relies on the sender's credit resynchronisation to re-establish
	// flow. Bounded retries keep PendingTimers drained at idle.
	maxGrantRetries = 3
)

// ---------------------------------------------------------------------------
// Sender.

// creditSender admits transmission while used-lost < granted+probes
// (the receiver authorised it) and inflight < controller window (the
// path has room). All counters are cumulative over the connection
// lifetime. Lost admissions must be written back into the grant space:
// the receiver extends authority as arrived+window, and an admission
// that never arrives would otherwise consume a credit forever — after
// MaxCredits lifetime losses no grant could reach used again and every
// send would cost a full resync timeout.
type creditSender struct {
	mu   sync.Mutex
	cond *sync.Cond
	ctrl Controller
	now  func() time.Time

	granted      uint64 // cumulative credits authorised by the peer
	probes       uint64 // emergency credits minted by Resync
	used         uint64 // cumulative admissions
	peerConsumed uint64 // peer's cumulative consumed count, clamped to used
	lost         uint64 // in-flight written off by Resync
	closed       bool

	// sendNanos rings admission timestamps for RTT sampling: slot
	// used%rttRingSize is stamped at admission and read back when the
	// peer's consumed count passes it.
	sendNanos [rttRingSize]int64
}

func newCreditSender(cfg Config) *creditSender {
	// The initial grant is implicit and symmetric: both halves seed
	// InitialCredits, so no wire exchange is needed before first send.
	s := &creditSender{
		ctrl:    NewController(cfg.Controller, cfg),
		now:     cfg.Now,
		granted: uint64(cfg.InitialCredits),
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// tryLocked is the single admission decision; callers hold s.mu.
func (s *creditSender) tryLocked() (ok, closed bool) {
	if s.closed {
		return false, true
	}
	if s.used-s.lost >= s.granted+s.probes {
		return false, false
	}
	if s.used-s.peerConsumed-s.lost >= uint64(s.ctrl.Window()) {
		return false, false
	}
	s.sendNanos[s.used%rttRingSize] = s.now().UnixNano()
	s.used++
	return true, false
}

func (s *creditSender) Acquire(uint32) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	ok, closed := s.tryLocked()
	if closed {
		return ErrClosed
	}
	if ok {
		return nil
	}
	mCreditWait.Inc()
	start := time.Now()
	for {
		s.cond.Wait()
		ok, closed := s.tryLocked()
		if closed || ok {
			blocked := time.Since(start)
			mBlockedNS.Add(int64(blocked))
			hCreditWait.Observe(int64(blocked))
			if closed {
				return ErrClosed
			}
			return nil
		}
	}
}

func (s *creditSender) AcquireTimeout(seq uint32, d time.Duration) error {
	return acquireTimeout(&s.mu, s.cond, d, mCreditWait, hCreditWait, s.tryLocked)
}

func (s *creditSender) TryAcquire(uint32) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	ok, _ := s.tryLocked()
	return ok
}

// Resync repairs the two ways lost packets wedge the sender. A lost
// grant leaves it without authorisation: mint one emergency probe so
// the next transmission can go out and trip the receiver's refill
// threshold. A lost data packet leaves phantom in-flight that no
// consumed count will ever cover: write one off and tell the
// controller about the loss.
func (s *creditSender) Resync() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if s.used > s.peerConsumed+s.lost {
		s.lost++
		s.ctrl.OnLoss()
	}
	if s.used-s.lost >= s.granted+s.probes {
		s.probes++
		mResync.Inc()
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}

// NoteLoss writes off n admissions whose transmissions are presumed
// lost, returning their credits to the grant space. The caller with
// the evidence is error control: a retransmission is exactly the
// statement that one earlier transmission of that sequence did not
// arrive. A spurious retransmission (the original was merely delayed)
// self-corrects — both copies arrive, the peer's consumed count covers
// both, and the clamp below shrinks lost back to the truth.
func (s *creditSender) NoteLoss(n int) {
	if n <= 0 {
		return
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.lost += uint64(n)
	if s.lost > s.used-s.peerConsumed {
		s.lost = s.used - s.peerConsumed
	}
	s.ctrl.OnLoss()
	s.cond.Broadcast()
	s.mu.Unlock()
}

func (s *creditSender) OnControl(c packet.Control) {
	if c.Type != packet.CtrlCreditGrant {
		return
	}
	g, err := packet.ParseCreditGrant(c.Body)
	if err != nil {
		return
	}
	s.mu.Lock()
	if g.Granted > s.granted {
		mGranted.Add(int64(g.Granted - s.granted))
		s.granted = g.Granted
	}
	// A real grant retires the emergency probes it was summoned by —
	// but never below what admissions already spent, so the invariant
	// used-lost ≤ granted+probes survives any grant value.
	if spent := s.used - s.lost; s.granted >= spent {
		s.probes = 0
	} else if s.probes > spent-s.granted {
		s.probes = spent - s.granted
	}
	// Advance the peer's consumed count. Clamp to used: a duplicated
	// data packet inflates the receiver's arrival count past what we
	// admitted, and in-flight must never go negative.
	pc := g.Consumed
	if pc > s.used {
		pc = s.used
	}
	if pc > s.peerConsumed {
		var rtt time.Duration
		if s.used-pc < rttRingSize {
			rtt = time.Duration(s.now().UnixNano() - s.sendNanos[(pc-1)%rttRingSize])
			if rtt < 0 {
				rtt = 0
			}
		}
		s.peerConsumed = pc
		if s.lost > s.used-s.peerConsumed {
			s.lost = s.used - s.peerConsumed
		}
		s.ctrl.OnAck(rtt)
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}

func (s *creditSender) Close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Stats snapshots the sender's cumulative credit state.
func (s *creditSender) Stats() SenderStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SenderStats{
		Granted:      s.granted,
		Probes:       s.probes,
		Used:         s.used,
		PeerConsumed: s.peerConsumed,
		Lost:         s.lost,
		Window:       s.ctrl.Window(),
		Controller:   s.ctrl.Name(),
	}
}

// SenderStats is a snapshot of a credit sender's cumulative state. The
// conservation invariant the property tests assert is
// Used ≤ Granted + Probes + Lost (equivalently Available ≥ 0) at every
// step: every admission is covered by receiver authority, an emergency
// probe, or a written-off loss.
type SenderStats struct {
	Granted      uint64 // cumulative credits authorised by the peer
	Probes       uint64 // emergency credits minted by Resync
	Used         uint64 // cumulative admissions
	PeerConsumed uint64 // peer's cumulative consumed count
	Lost         uint64 // in-flight written off by Resync
	Window       int    // congestion controller window
	Controller   string // congestion controller name
}

// Available is the number of further admissions the current grants
// allow (before the congestion window is considered). Written-off
// losses return to the grant space: they never occupied receiver
// buffer.
func (st SenderStats) Available() uint64 { return st.Granted + st.Probes + st.Lost - st.Used }

// Inflight is the number of admissions not yet covered by the peer's
// consumed count or written off as lost.
func (st SenderStats) Inflight() uint64 { return st.Used - st.PeerConsumed - st.Lost }

// SenderStatsOf snapshots s if it is a credit sender.
func SenderStatsOf(s Sender) (SenderStats, bool) {
	type statser interface{ Stats() SenderStats }
	if cs, ok := s.(statser); ok {
		return cs.Stats(), true
	}
	return SenderStats{}, false
}

// ---------------------------------------------------------------------------
// Receiver.

// creditReceiver sizes its advertised window from observed consumption
// rate and issues a cumulative grant whenever the sender has consumed
// ≥75% of the last advertisement.
type creditReceiver struct {
	cfg Config

	mu           sync.Mutex
	arrived      uint64 // cumulative deliveries
	granted      uint64 // cumulative credits authorised
	grantArrived uint64 // arrived count when the last grant was issued
	window       int    // current advertisement
	lastSeen     time.Time
	lastGrant    time.Time
	closed       bool

	// Refill-retry state: a refill whose grant may have been lost is
	// re-emitted (through emit, installed by SetEmitter) a bounded
	// number of times with doubling backoff. grantProof is the
	// allowance before the refill — an arrival beyond it proves the
	// sender heard the new grant, stopping the retries.
	emit       func(packet.Control) bool
	grantProof uint64
	retry      *time.Timer
	retryGen   uint64
	retries    int
	backoff    time.Duration

	out [1]packet.Control
}

func newCreditReceiver(cfg Config) *creditReceiver {
	now := cfg.Now()
	return &creditReceiver{
		cfg:       cfg,
		granted:   uint64(cfg.InitialCredits),
		window:    cfg.InitialCredits,
		lastSeen:  now,
		lastGrant: now,
	}
}

func (r *creditReceiver) OnData(seq uint32) []packet.Control {
	now := r.cfg.Now()
	r.mu.Lock()
	r.arrived++
	mConsumed.Inc()
	if r.retry != nil && r.arrived > r.grantProof {
		// The sender transmitted beyond its pre-refill allowance, so
		// the refill reached it; the retry timer has nothing to repair.
		r.stopRetryLocked()
	}
	if now.Sub(r.lastSeen) > r.cfg.ActiveWindow {
		// Idle gap: decay the advertisement back to the floor.
		r.window = r.cfg.InitialCredits
	}
	r.lastSeen = now
	if (r.arrived-r.grantArrived)*4 < uint64(r.window)*3 {
		r.mu.Unlock()
		return nil
	}
	g := r.refillLocked(now)
	r.out[0] = packet.Control{
		Type: packet.CtrlCreditGrant,
		// The body is freshly allocated (not scratch): refill grants are
		// also handed to the retry timer and, in core, cross goroutines
		// through control queues.
		Body: packet.AppendCreditGrant(nil, g),
	}
	r.armRetryLocked()
	r.mu.Unlock()
	return r.out[:1]
}

// refillLocked sizes a new advertisement from the consumption rate
// since the last grant and extends the cumulative grant to cover it.
func (r *creditReceiver) refillLocked(now time.Time) packet.CreditGrant {
	consumed := r.arrived - r.grantArrived
	if elapsed := now.Sub(r.lastGrant); elapsed > 0 {
		// Advertise two activity-windows of the observed rate: enough
		// for the sender to run until the next threshold crossing plus
		// one grant round trip of slack.
		rate := float64(consumed) / elapsed.Seconds()
		r.window = int(rate * r.cfg.ActiveWindow.Seconds() * 2)
	} else {
		// Frozen test clock: no rate signal, grow geometrically while
		// traffic flows.
		r.window *= 2
	}
	// The rate estimate includes any time the sender spent stalled
	// waiting for this very grant, so it understates demand exactly
	// when the window is the bottleneck — left alone, one loss-induced
	// stall would poison the rate, shrink the window, lengthen the next
	// stall, and trap the stream at the floor. The sender proved it
	// could consume `consumed` since the last grant; never advertise
	// less than twice that, so a credit-limited stream recovers
	// geometrically while a genuinely idle one still decays via the
	// inter-arrival check in OnData.
	if floor := int(consumed) * 2; r.window < floor {
		r.window = floor
	}
	if r.window < r.cfg.InitialCredits {
		r.window = r.cfg.InitialCredits
	}
	if r.window > r.cfg.MaxCredits {
		r.window = r.cfg.MaxCredits
	}
	r.grantProof = r.granted
	// Monotonic: a decayed window must never retract authority the
	// sender may already have spent.
	if g := r.arrived + uint64(r.window); g > r.granted {
		r.granted = g
	}
	r.grantArrived = r.arrived
	r.lastGrant = now
	mRefill.Inc()
	return packet.CreditGrant{Granted: r.granted, Consumed: r.arrived, Window: uint32(r.window)}
}

// armRetryLocked starts the refill-retry chain for the grant just
// issued; a no-op without an emitter (fast path, pure state-machine
// tests) so those configurations never arm a timer.
func (r *creditReceiver) armRetryLocked() {
	if r.emit == nil {
		return
	}
	r.stopRetryLocked()
	r.retries = 0
	r.backoff = 4 * r.cfg.ActiveWindow
	r.scheduleRetryLocked()
}

func (r *creditReceiver) scheduleRetryLocked() {
	gen := r.retryGen
	pendingTimers.Add(1)
	r.retry = time.AfterFunc(r.backoff, func() { r.retryFire(gen) })
}

func (r *creditReceiver) retryFire(gen uint64) {
	pendingTimers.Add(-1)
	r.mu.Lock()
	if r.closed || gen != r.retryGen || r.arrived > r.grantProof {
		r.mu.Unlock()
		return
	}
	g := packet.CreditGrant{Granted: r.granted, Consumed: r.arrived, Window: uint32(r.window)}
	r.retries++
	if r.retries < maxGrantRetries {
		r.backoff *= 2
		r.scheduleRetryLocked()
	} else {
		r.retry = nil
	}
	emit := r.emit
	r.mu.Unlock()
	mRefill.Inc()
	emit(packet.Control{Type: packet.CtrlCreditGrant, Body: packet.AppendCreditGrant(nil, g)})
}

// stopRetryLocked cancels the retry chain; a bumped generation turns
// any already-fired callback into a no-op.
func (r *creditReceiver) stopRetryLocked() {
	r.retryGen++
	if r.retry != nil && r.retry.Stop() {
		pendingTimers.Add(-1)
	}
	r.retry = nil
}

// PiggybackGrant returns a grant reflecting the receiver's current
// cumulative state, for riding on an outbound error-control ack. It
// raises no new credit (granted is unchanged) but refreshes the
// consumed count, which is what retires the sender's in-flight and
// feeds its congestion controller.
func (r *creditReceiver) PiggybackGrant() (packet.Control, bool) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return packet.Control{}, false
	}
	g := packet.CreditGrant{Granted: r.granted, Consumed: r.arrived, Window: uint32(r.window)}
	r.mu.Unlock()
	mPiggyback.Inc()
	return packet.Control{Type: packet.CtrlCreditGrant, Body: packet.AppendCreditGrant(nil, g)}, true
}

// SetEmit installs the asynchronous control emitter the refill-retry
// timer uses. Emit is called without receiver locks held and must be
// safe from a timer goroutine.
func (r *creditReceiver) SetEmit(emit func(packet.Control) bool) {
	r.mu.Lock()
	r.emit = emit
	r.mu.Unlock()
}

func (r *creditReceiver) Close() {
	r.mu.Lock()
	r.closed = true
	r.stopRetryLocked()
	r.mu.Unlock()
}

// Stats snapshots the receiver's cumulative credit state.
func (r *creditReceiver) Stats() ReceiverStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return ReceiverStats{Arrived: r.arrived, Granted: r.granted, Window: r.window}
}

// ReceiverStats is a snapshot of a credit receiver's cumulative state.
type ReceiverStats struct {
	Arrived uint64 // cumulative deliveries
	Granted uint64 // cumulative credits authorised
	Window  int    // current advertisement
}

// ReceiverStatsOf snapshots r if it is a credit receiver.
func ReceiverStatsOf(r Receiver) (ReceiverStats, bool) {
	type statser interface{ Stats() ReceiverStats }
	if cr, ok := r.(statser); ok {
		return cr.Stats(), true
	}
	return ReceiverStats{}, false
}

// Piggyback returns a credit grant reflecting r's current cumulative
// state when r is a credit receiver, for piggybacking on outbound
// acks. Other algorithms report ok=false.
func Piggyback(r Receiver) (packet.Control, bool) {
	type piggybacker interface{ PiggybackGrant() (packet.Control, bool) }
	if p, ok := r.(piggybacker); ok {
		return p.PiggybackGrant()
	}
	return packet.Control{}, false
}

// NoteLoss reports to s that n earlier admissions are presumed lost,
// when s is a credit sender; their credits return to the grant space.
// Core calls it from the transmit paths whenever error control hands
// back retransmissions. A no-op for other algorithms.
func NoteLoss(s Sender, n int) {
	type lossNoter interface{ NoteLoss(int) }
	if ln, ok := s.(lossNoter); ok {
		ln.NoteLoss(n)
	}
}

// SetEmitter installs an asynchronous control emitter on r when r is a
// credit receiver; the refill-retry timer re-emits possibly-lost
// grants through it. A no-op for other algorithms. Without an emitter
// the receiver arms no timers at all.
func SetEmitter(r Receiver, emit func(packet.Control) bool) {
	type emitSetter interface {
		SetEmit(func(packet.Control) bool)
	}
	if s, ok := r.(emitSetter); ok {
		s.SetEmit(emit)
	}
}
