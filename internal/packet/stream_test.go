package packet

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// TestDataHeaderStreamID pins the wire position of the stream id: the
// word at offset 20 that pre-stream encoders wrote as reserved zero.
func TestDataHeaderStreamID(t *testing.T) {
	h := DataHeader{Flags: FlagEnd, ConnID: 1, SessionID: 2, Seq: 3, Length: 4, StreamID: 77}
	enc := h.Marshal(nil)
	if len(enc) != DataHeaderSize {
		t.Fatalf("encoded header is %d bytes, want %d", len(enc), DataHeaderSize)
	}
	if got := binary.BigEndian.Uint32(enc[20:]); got != 77 {
		t.Fatalf("StreamID encoded as %d at offset 20, want 77", got)
	}
	dec, err := UnmarshalDataHeader(enc)
	if err != nil || dec != h {
		t.Fatalf("round trip diverged: %+v vs %+v (%v)", dec, h, err)
	}
}

// TestLegacyFrameIsStreamZero: a frame whose reserved word is zero —
// everything an old peer ever sent — must decode as stream 0.
func TestLegacyFrameIsStreamZero(t *testing.T) {
	legacy := DataHeader{Flags: FlagEnd, ConnID: 9, SessionID: 8, Seq: 7, Length: 6}
	enc := legacy.Marshal(nil)
	// Explicitly zero the reserved word, simulating an old encoder.
	binary.BigEndian.PutUint32(enc[20:], 0)
	dec, err := UnmarshalDataHeader(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.StreamID != 0 {
		t.Fatalf("legacy frame decoded as stream %d, want 0", dec.StreamID)
	}
}

func TestStreamGrantRoundTrip(t *testing.T) {
	g := CreditGrant{Granted: 1 << 33, Consumed: 1<<33 - 5, Window: 64}
	body := AppendStreamGrant(nil, 12, g)
	if len(body) != StreamGrantSize {
		t.Fatalf("encoded body is %d bytes, want %d", len(body), StreamGrantSize)
	}
	id, g2, err := ParseStreamGrant(body)
	if err != nil || id != 12 || g2 != g {
		t.Fatalf("round trip diverged: %d/%+v vs 12/%+v (%v)", id, g2, g, err)
	}
	if _, _, err := ParseStreamGrant(body[:StreamGrantSize-1]); err == nil {
		t.Fatal("truncated stream grant accepted")
	}
}

func TestStreamIDBodyRoundTrip(t *testing.T) {
	id, err := ParseStreamID(StreamIDBody(41))
	if err != nil || id != 41 {
		t.Fatalf("round trip diverged: %d (%v)", id, err)
	}
	if _, err := ParseStreamID([]byte{1, 2}); err == nil {
		t.Fatal("truncated stream id accepted")
	}
}

// TestStreamControlStrings keeps diagnostics readable for the new types.
func TestStreamControlStrings(t *testing.T) {
	for typ, want := range map[ControlType]string{
		CtrlStreamGrant: "STREAMGRANT",
		CtrlStreamOpen:  "STREAMOPEN",
		CtrlStreamClose: "STREAMCLOSE",
	} {
		if got := typ.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", typ, got, want)
		}
	}
}

// TestStreamGrantControlRoundTrip sends a stream grant through the
// full control marshal path, as the receive loops will see it.
func TestStreamGrantControlRoundTrip(t *testing.T) {
	g := CreditGrant{Granted: 100, Consumed: 90, Window: 32}
	ctl := Control{Type: CtrlStreamGrant, ConnID: 4, Body: AppendStreamGrant(nil, 6, g)}
	dec, err := UnmarshalControl(ctl.Marshal(nil))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Type != CtrlStreamGrant || !bytes.Equal(dec.Body, ctl.Body) {
		t.Fatalf("control round trip diverged: %+v vs %+v", dec, ctl)
	}
	id, g2, err := ParseStreamGrant(dec.Body)
	if err != nil || id != 6 || g2 != g {
		t.Fatalf("grant body diverged: %d/%+v (%v)", id, g2, err)
	}
}
