package packet

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestDataHeaderRoundTrip(t *testing.T) {
	h := DataHeader{
		Flags:     FlagEnd | FlagRetransmit,
		ConnID:    7,
		SessionID: 1234,
		Seq:       42,
		Length:    4096,
	}
	buf := h.Marshal(nil)
	if len(buf) != DataHeaderSize {
		t.Fatalf("encoded size = %d, want %d", len(buf), DataHeaderSize)
	}
	got, err := UnmarshalDataHeader(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("round trip: got %+v, want %+v", got, h)
	}
	if !got.End() {
		t.Error("End() = false, want true")
	}
}

func TestDataHeaderErrors(t *testing.T) {
	if _, err := UnmarshalDataHeader(make([]byte, 3)); err != ErrShortPacket {
		t.Errorf("short: err = %v", err)
	}
	bad := make([]byte, DataHeaderSize)
	if _, err := UnmarshalDataHeader(bad); err != ErrBadMagic {
		t.Errorf("zero magic: err = %v", err)
	}
}

func TestControlRoundTrip(t *testing.T) {
	c := Control{
		Type:      CtrlCredit,
		ConnID:    3,
		SessionID: 9,
		Body:      CreditBody(16),
	}
	buf := c.Marshal(nil)
	got, err := UnmarshalControl(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != c.Type || got.ConnID != c.ConnID || got.SessionID != c.SessionID {
		t.Fatalf("round trip header mismatch: %+v", got)
	}
	n, err := ParseCreditBody(got.Body)
	if err != nil || n != 16 {
		t.Fatalf("credits = %d, %v", n, err)
	}
}

func TestControlBodyTruncation(t *testing.T) {
	c := Control{Type: CtrlAck, Body: []byte{1, 2, 3, 4, 5}}
	buf := c.Marshal(nil)
	if _, err := UnmarshalControl(buf[:len(buf)-2]); err != ErrShortPacket {
		t.Errorf("truncated body: err = %v", err)
	}
}

func TestControlTypeString(t *testing.T) {
	tests := map[ControlType]string{
		CtrlAck:          "ACK",
		CtrlCredit:       "CREDIT",
		CtrlSetup:        "SETUP",
		CtrlAccept:       "ACCEPT",
		CtrlReject:       "REJECT",
		CtrlTeardown:     "TEARDOWN",
		CtrlRate:         "RATE",
		CtrlNack:         "NACK",
		CtrlWinAck:       "WINACK",
		ControlType(250): "ControlType(250)",
	}
	for ct, want := range tests {
		if got := ct.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", uint16(ct), got, want)
		}
	}
}

func TestBitmapLifecycle(t *testing.T) {
	b := NewBitmap(10)
	if !b.AnySet() {
		t.Fatal("fresh bitmap should have all bits set")
	}
	if b.CountSet() != 10 {
		t.Fatalf("CountSet = %d, want 10", b.CountSet())
	}
	for i := 0; i < 10; i++ {
		b.Clear(i)
	}
	if b.AnySet() {
		t.Fatalf("all cleared but AnySet; missing = %v", b.Missing())
	}
	b.Set(3)
	b.Set(7)
	missing := b.Missing()
	if len(missing) != 2 || missing[0] != 3 || missing[1] != 7 {
		t.Fatalf("Missing = %v, want [3 7]", missing)
	}
}

func TestBitmapOutOfRange(t *testing.T) {
	b := NewBitmap(4)
	b.Set(-1)
	b.Set(100)
	b.Clear(-5)
	b.Clear(99)
	if b.Get(-1) || b.Get(100) {
		t.Error("out-of-range Get should be false")
	}
	if b.CountSet() != 4 {
		t.Errorf("CountSet = %d, want 4", b.CountSet())
	}
}

func TestBitmapMarshal(t *testing.T) {
	b := NewBitmap(130) // spans three words
	b.Clear(0)
	b.Clear(64)
	b.Clear(129)
	got, err := UnmarshalBitmap(b.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 130 {
		t.Fatalf("Len = %d", got.Len())
	}
	for i := 0; i < 130; i++ {
		if got.Get(i) != b.Get(i) {
			t.Fatalf("bit %d mismatch", i)
		}
	}
}

func TestBitmapUnmarshalErrors(t *testing.T) {
	if _, err := UnmarshalBitmap(nil); err != ErrShortPacket {
		t.Errorf("nil: err = %v", err)
	}
	b := NewBitmap(65)
	enc := b.Marshal()
	if _, err := UnmarshalBitmap(enc[:8]); err != ErrShortPacket {
		t.Errorf("truncated: err = %v", err)
	}
}

// Property: data headers round-trip for arbitrary field values.
func TestQuickDataHeader(t *testing.T) {
	f := func(flags uint16, conn, sess, seq, length uint32) bool {
		h := DataHeader{Flags: flags, ConnID: conn, SessionID: sess, Seq: seq, Length: length}
		got, err := UnmarshalDataHeader(h.Marshal(nil))
		return err == nil && got == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: control packets round-trip with arbitrary bodies.
func TestQuickControl(t *testing.T) {
	f := func(typ uint16, conn, sess uint32, body []byte) bool {
		c := Control{Type: ControlType(typ), ConnID: conn, SessionID: sess, Body: body}
		got, err := UnmarshalControl(c.Marshal(nil))
		return err == nil && got.Type == c.Type && got.ConnID == conn &&
			got.SessionID == sess && bytes.Equal(got.Body, body)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a bitmap with bits cleared per a received-set reports exactly
// the complement as missing.
func TestQuickBitmapMissing(t *testing.T) {
	f := func(n uint8, received []uint8) bool {
		size := int(n%200) + 1
		b := NewBitmap(size)
		got := make(map[int]bool)
		for _, r := range received {
			i := int(r) % size
			b.Clear(i)
			got[i] = true
		}
		for _, m := range b.Missing() {
			if got[m] {
				return false // reported missing but was received
			}
		}
		return b.CountSet() == size-len(got)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
