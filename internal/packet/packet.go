// Package packet defines the wire formats used by the NCS data and
// control planes.
//
// The data plane carries SDUs (Service Data Units): segments of a user
// message produced by the Error Control Thread. Each SDU carries the
// header of Figure 5 — a sequence number and a control bit that marks the
// final segment — plus the connection/session routing fields that
// NCS_send() callers must supply (destination process id, destination
// thread id, session id).
//
// The control plane carries small fixed-purpose packets: ACK packets with
// the selective-repeat bitmap, CREDIT packets for the credit-based flow
// control scheme, and connection-management packets (SETUP/ACCEPT/
// REJECT/TEARDOWN) used by the Master Thread.
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Wire sizes.
const (
	// DataHeaderSize is the byte length of an encoded SDU header.
	DataHeaderSize = 24
	// ControlHeaderSize is the byte length of an encoded control header.
	ControlHeaderSize = 16
)

// Magic numbers distinguishing plane traffic; useful when a misconfigured
// endpoint cross-connects the planes.
const (
	dataMagic    uint16 = 0x4e43 // "NC"
	controlMagic uint16 = 0x4e53 // "NS"
)

// Data header flag bits.
const (
	// FlagEnd marks the last SDU of a segmented user message
	// (the "control bit" of Figure 5).
	FlagEnd uint16 = 1 << 0
	// FlagRetransmit marks an SDU resent by the selective-repeat scheme.
	FlagRetransmit uint16 = 1 << 1
	// FlagUnreliable marks an SDU sent on a connection without error
	// control (e.g. audio/video streams).
	FlagUnreliable uint16 = 1 << 2
)

// Errors returned by decoding.
var (
	ErrShortPacket = errors.New("packet: truncated packet")
	ErrBadMagic    = errors.New("packet: bad magic")
)

// DataHeader is the header attached to every SDU on a data connection.
type DataHeader struct {
	Flags     uint16 // FlagEnd, FlagRetransmit, ...
	ConnID    uint32 // connection identifier assigned at setup
	SessionID uint32 // caller-provided session id (one message exchange)
	Seq       uint32 // SDU sequence number within the session
	Length    uint32 // payload byte count
	StreamID  uint32 // ordered channel within the connection; 0 = default
}

// Marshal appends the encoded header to dst and returns the result.
func (h DataHeader) Marshal(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint16(dst, dataMagic)
	dst = binary.BigEndian.AppendUint16(dst, h.Flags)
	dst = binary.BigEndian.AppendUint32(dst, h.ConnID)
	dst = binary.BigEndian.AppendUint32(dst, h.SessionID)
	dst = binary.BigEndian.AppendUint32(dst, h.Seq)
	dst = binary.BigEndian.AppendUint32(dst, h.Length)
	dst = binary.BigEndian.AppendUint32(dst, h.StreamID)
	return dst
}

// UnmarshalDataHeader decodes a header from p. The StreamID field
// occupies what older frames encoded as a reserved zero word, so frames
// from pre-stream peers decode as stream 0 — the default channel.
func UnmarshalDataHeader(p []byte) (DataHeader, error) {
	if len(p) < DataHeaderSize {
		return DataHeader{}, ErrShortPacket
	}
	if binary.BigEndian.Uint16(p) != dataMagic {
		return DataHeader{}, ErrBadMagic
	}
	return DataHeader{
		Flags:     binary.BigEndian.Uint16(p[2:]),
		ConnID:    binary.BigEndian.Uint32(p[4:]),
		SessionID: binary.BigEndian.Uint32(p[8:]),
		Seq:       binary.BigEndian.Uint32(p[12:]),
		Length:    binary.BigEndian.Uint32(p[16:]),
		StreamID:  binary.BigEndian.Uint32(p[20:]),
	}, nil
}

// End reports whether the end-of-message control bit is set.
func (h DataHeader) End() bool { return h.Flags&FlagEnd != 0 }

// AppendSDU appends one encoded SDU — header then payload — to dst and
// returns the result. With a pooled dst (buf.Buffer.B re-sliced to
// zero) this is the single staging step of the send path: no
// intermediate packet buffer exists.
func AppendSDU(dst []byte, h DataHeader, payload []byte) []byte {
	dst = h.Marshal(dst)
	return append(dst, payload...)
}

// SplitData decodes a data packet into its header and payload view.
// The payload ALIASES p (and therefore whatever pooled buffer p lives
// in — holders that outlive the buffer's owner must retain it, see
// package buf) and is trimmed to the header's length field.
func SplitData(p []byte) (DataHeader, []byte, error) {
	h, err := UnmarshalDataHeader(p)
	if err != nil {
		return DataHeader{}, nil, err
	}
	payload := p[DataHeaderSize:]
	if int(h.Length) <= len(payload) {
		payload = payload[:h.Length]
	}
	return h, payload, nil
}

// ControlType enumerates control-plane packet kinds.
type ControlType uint16

const (
	// CtrlAck carries a selective-repeat acknowledgment bitmap.
	CtrlAck ControlType = iota + 1
	// CtrlCredit grants transmission credits to the sender.
	CtrlCredit
	// CtrlSetup requests a new data connection with a QoS configuration.
	CtrlSetup
	// CtrlAccept confirms a CtrlSetup.
	CtrlAccept
	// CtrlReject refuses a CtrlSetup.
	CtrlReject
	// CtrlTeardown closes a connection.
	CtrlTeardown
	// CtrlRate carries a rate-based flow control adjustment.
	CtrlRate
	// CtrlNack requests retransmission under go-back-N.
	CtrlNack
	// CtrlWinAck carries a window flow control cumulative
	// acknowledgment. It is distinct from CtrlAck so that window-level
	// acknowledgments (connection-lifetime arrival indices) are never
	// confused with error-control acknowledgments (per-session bitmaps
	// or cumulative SDU numbers).
	CtrlWinAck
	// CtrlPing probes connection liveness; the peer answers CtrlPong.
	CtrlPing
	// CtrlPong answers a CtrlPing.
	CtrlPong
	// CtrlCreditGrant carries a cumulative credit grant from the
	// receiver-advertised flow control scheme: the total number of SDUs
	// the receiver has ever authorised, the total it has consumed, and
	// the window it currently advertises. Cumulative absolute values
	// make grants idempotent — a sender takes the max of what it holds
	// and what arrives, so loss, duplication and reordering of grants
	// never corrupt the credit state.
	CtrlCreditGrant
	// CtrlStreamGrant is a CtrlCreditGrant scoped to one stream: the
	// body prefixes the grant with the stream id, so each stream's
	// receiver-advertised credit window travels independently of the
	// connection-level (stream 0) window.
	CtrlStreamGrant
	// CtrlStreamOpen announces a newly opened stream to the peer so
	// AcceptStream can surface it before any data arrives. Advisory:
	// the first data frame on an unknown stream also creates it.
	CtrlStreamOpen
	// CtrlStreamClose announces that a stream was closed by its owner;
	// the peer releases the stream's parked state.
	CtrlStreamClose
)

// String implements fmt.Stringer for diagnostics.
func (t ControlType) String() string {
	switch t {
	case CtrlAck:
		return "ACK"
	case CtrlCredit:
		return "CREDIT"
	case CtrlSetup:
		return "SETUP"
	case CtrlAccept:
		return "ACCEPT"
	case CtrlReject:
		return "REJECT"
	case CtrlTeardown:
		return "TEARDOWN"
	case CtrlRate:
		return "RATE"
	case CtrlNack:
		return "NACK"
	case CtrlWinAck:
		return "WINACK"
	case CtrlPing:
		return "PING"
	case CtrlPong:
		return "PONG"
	case CtrlCreditGrant:
		return "CREDITGRANT"
	case CtrlStreamGrant:
		return "STREAMGRANT"
	case CtrlStreamOpen:
		return "STREAMOPEN"
	case CtrlStreamClose:
		return "STREAMCLOSE"
	default:
		return fmt.Sprintf("ControlType(%d)", uint16(t))
	}
}

// Control is a control-plane packet. Body is interpreted per Type:
// ACK bodies hold an encoded Bitmap, CREDIT bodies a 4-byte count,
// SETUP bodies an encoded connection configuration.
type Control struct {
	Type      ControlType
	ConnID    uint32
	SessionID uint32
	Body      []byte
}

// Marshal appends the encoded control packet to dst and returns it.
func (c Control) Marshal(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint16(dst, controlMagic)
	dst = binary.BigEndian.AppendUint16(dst, uint16(c.Type))
	dst = binary.BigEndian.AppendUint32(dst, c.ConnID)
	dst = binary.BigEndian.AppendUint32(dst, c.SessionID)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(c.Body)))
	dst = append(dst, c.Body...)
	return dst
}

// UnmarshalControl decodes a control packet from p. The returned Body
// aliases p.
func UnmarshalControl(p []byte) (Control, error) {
	if len(p) < ControlHeaderSize {
		return Control{}, ErrShortPacket
	}
	if binary.BigEndian.Uint16(p) != controlMagic {
		return Control{}, ErrBadMagic
	}
	n := binary.BigEndian.Uint32(p[12:])
	if uint32(len(p)-ControlHeaderSize) < n {
		return Control{}, ErrShortPacket
	}
	return Control{
		Type:      ControlType(binary.BigEndian.Uint16(p[2:])),
		ConnID:    binary.BigEndian.Uint32(p[4:]),
		SessionID: binary.BigEndian.Uint32(p[8:]),
		Body:      p[ControlHeaderSize : ControlHeaderSize+int(n)],
	}, nil
}

// CreditBody encodes a credit grant of n packets.
func CreditBody(n uint32) []byte {
	return binary.BigEndian.AppendUint32(nil, n)
}

// ParseCreditBody decodes a credit grant.
func ParseCreditBody(p []byte) (uint32, error) {
	if len(p) < 4 {
		return 0, ErrShortPacket
	}
	return binary.BigEndian.Uint32(p), nil
}

// CreditGrantSize is the byte length of an encoded CreditGrant body.
const CreditGrantSize = 20

// CreditGrant is the body of a CtrlCreditGrant packet. All fields are
// cumulative over the connection lifetime, never deltas: Granted is the
// total number of SDUs the receiver has authorised the sender to
// transmit, Consumed the total it has delivered to the application, and
// Window the advertisement the receiver currently sizes its grants
// from. Because the values only grow, a stale or duplicated grant is
// harmless — the sender keeps the maximum it has seen.
type CreditGrant struct {
	Granted  uint64
	Consumed uint64
	Window   uint32
}

// AppendCreditGrant appends the encoded grant body to dst and returns
// the result.
func AppendCreditGrant(dst []byte, g CreditGrant) []byte {
	dst = binary.BigEndian.AppendUint64(dst, g.Granted)
	dst = binary.BigEndian.AppendUint64(dst, g.Consumed)
	dst = binary.BigEndian.AppendUint32(dst, g.Window)
	return dst
}

// ParseCreditGrant decodes a CtrlCreditGrant body.
func ParseCreditGrant(p []byte) (CreditGrant, error) {
	if len(p) < CreditGrantSize {
		return CreditGrant{}, ErrShortPacket
	}
	return CreditGrant{
		Granted:  binary.BigEndian.Uint64(p),
		Consumed: binary.BigEndian.Uint64(p[8:]),
		Window:   binary.BigEndian.Uint32(p[16:]),
	}, nil
}

// StreamGrantSize is the byte length of an encoded CtrlStreamGrant
// body: the stream id followed by a CreditGrant.
const StreamGrantSize = 4 + CreditGrantSize

// AppendStreamGrant appends the encoded per-stream grant body — stream
// id, then the cumulative grant — to dst and returns the result.
func AppendStreamGrant(dst []byte, streamID uint32, g CreditGrant) []byte {
	dst = binary.BigEndian.AppendUint32(dst, streamID)
	return AppendCreditGrant(dst, g)
}

// ParseStreamGrant decodes a CtrlStreamGrant body.
func ParseStreamGrant(p []byte) (uint32, CreditGrant, error) {
	if len(p) < StreamGrantSize {
		return 0, CreditGrant{}, ErrShortPacket
	}
	g, err := ParseCreditGrant(p[4:])
	if err != nil {
		return 0, CreditGrant{}, err
	}
	return binary.BigEndian.Uint32(p), g, nil
}

// StreamIDBody encodes the 4-byte body of CtrlStreamOpen/CtrlStreamClose.
func StreamIDBody(streamID uint32) []byte {
	return binary.BigEndian.AppendUint32(nil, streamID)
}

// ParseStreamID decodes a CtrlStreamOpen/CtrlStreamClose body.
func ParseStreamID(p []byte) (uint32, error) {
	if len(p) < 4 {
		return 0, ErrShortPacket
	}
	return binary.BigEndian.Uint32(p), nil
}
