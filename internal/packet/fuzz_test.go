package packet

import (
	"bytes"
	"testing"
)

// Fuzz targets for the wire decoders. The decoders sit directly behind
// the receive loops, so arbitrary bytes from a corrupted or hostile
// peer reach them unfiltered: they must never panic, never return
// views outside the input, and decode/encode must round-trip. Seed
// corpora live in testdata/fuzz; CI runs each target briefly
// (go test -fuzz=<target> -fuzztime=10s).

func FuzzSplitData(f *testing.F) {
	valid := DataHeader{Flags: FlagEnd, ConnID: 1, SessionID: 2, Seq: 0, Length: 5}
	f.Add(append(valid.Marshal(nil), []byte("hello")...))
	f.Add([]byte{0x4e, 0x43, 0x00})            // truncated header
	f.Add(Control{Type: CtrlAck}.Marshal(nil)) // control magic on the data plane
	f.Add(DataHeader{Length: 1 << 31}.Marshal(nil))
	f.Fuzz(func(t *testing.T, data []byte) {
		h, payload, err := SplitData(data)
		if err != nil {
			return
		}
		if len(payload) > len(data)-DataHeaderSize {
			t.Fatalf("payload view (%d bytes) exceeds input (%d bytes)", len(payload), len(data))
		}
		if int(h.Length) <= len(data)-DataHeaderSize && int(h.Length) != len(payload) {
			t.Fatalf("payload not trimmed to header length: %d != %d", len(payload), h.Length)
		}
		// Round-trip: re-encoding the decoded header and payload must
		// decode to the same header.
		re := AppendSDU(nil, h, payload)
		h2, p2, err := SplitData(re)
		if err != nil {
			t.Fatalf("re-encoded packet failed to decode: %v", err)
		}
		if h2 != h || !bytes.Equal(p2, payload) {
			t.Fatalf("round trip diverged: %+v vs %+v", h2, h)
		}
	})
}

func FuzzUnmarshalControl(f *testing.F) {
	f.Add(Control{Type: CtrlCredit, ConnID: 1, SessionID: 2, Body: CreditBody(8)}.Marshal(nil))
	f.Add(Control{Type: CtrlAck, Body: NewBitmap(3).Marshal()}.Marshal(nil))
	f.Add([]byte{0x4e, 0x53})                                         // truncated
	f.Add(Control{Type: CtrlPing}.Marshal(nil)[:ControlHeaderSize-1]) // short header
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := UnmarshalControl(data)
		if err != nil {
			return
		}
		if len(c.Body) > len(data)-ControlHeaderSize {
			t.Fatalf("body view (%d bytes) exceeds input (%d bytes)", len(c.Body), len(data))
		}
		re := c.Marshal(nil)
		c2, err := UnmarshalControl(re)
		if err != nil {
			t.Fatalf("re-encoded control failed to decode: %v", err)
		}
		if c2.Type != c.Type || c2.ConnID != c.ConnID || c2.SessionID != c.SessionID || !bytes.Equal(c2.Body, c.Body) {
			t.Fatalf("round trip diverged: %+v vs %+v", c2, c)
		}
	})
}

func FuzzUnmarshalCredit(f *testing.F) {
	f.Add(AppendCreditGrant(nil, CreditGrant{Granted: 64, Consumed: 48, Window: 16}))
	f.Add(AppendCreditGrant(nil, CreditGrant{Granted: 1 << 40, Consumed: 1<<40 - 3, Window: 1 << 20}))
	f.Add(AppendCreditGrant(nil, CreditGrant{}))
	f.Add([]byte{0x00, 0x00, 0x00, 0x01})                      // truncated body
	f.Add(AppendCreditGrant(nil, CreditGrant{Granted: 7})[:8]) // granted only
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ParseCreditGrant(data)
		if err != nil {
			if len(data) >= CreditGrantSize {
				t.Fatalf("%d-byte body rejected: %v", len(data), err)
			}
			return
		}
		re := AppendCreditGrant(nil, g)
		if len(re) != CreditGrantSize {
			t.Fatalf("encoded grant is %d bytes, want %d", len(re), CreditGrantSize)
		}
		g2, err := ParseCreditGrant(re)
		if err != nil {
			t.Fatalf("re-encoded grant failed to decode: %v", err)
		}
		if g2 != g {
			t.Fatalf("round trip diverged: %+v vs %+v", g2, g)
		}
		// Trailing bytes beyond the fixed-size body must be ignored, not
		// folded into the decode.
		if !bytes.Equal(re, data[:CreditGrantSize]) {
			t.Fatalf("decode did not reproduce the canonical prefix: %x vs %x", re, data[:CreditGrantSize])
		}
	})
}

// FuzzStreamFrame covers the stream-aware framing: per-stream credit
// grant bodies, stream open/close bodies, and the StreamID word of the
// data header (which older peers encode as reserved zero).
func FuzzStreamFrame(f *testing.F) {
	f.Add(AppendStreamGrant(nil, 3, CreditGrant{Granted: 64, Consumed: 48, Window: 16}))
	f.Add(AppendStreamGrant(nil, 0, CreditGrant{}))
	f.Add(AppendStreamGrant(nil, 1<<31, CreditGrant{Granted: 1 << 40, Window: 1 << 20}))
	f.Add(StreamIDBody(7))
	f.Add([]byte{0x00, 0x00, 0x00})                                // truncated stream id
	f.Add(AppendStreamGrant(nil, 5, CreditGrant{Granted: 9})[:12]) // truncated grant
	f.Add(AppendSDU(nil, DataHeader{Flags: FlagEnd, ConnID: 1, SessionID: 2, Length: 5, StreamID: 9}, []byte("hello")))
	f.Fuzz(func(t *testing.T, data []byte) {
		if id, g, err := ParseStreamGrant(data); err == nil {
			re := AppendStreamGrant(nil, id, g)
			if len(re) != StreamGrantSize {
				t.Fatalf("encoded stream grant is %d bytes, want %d", len(re), StreamGrantSize)
			}
			id2, g2, err := ParseStreamGrant(re)
			if err != nil || id2 != id || g2 != g {
				t.Fatalf("stream grant round trip diverged: %d/%+v vs %d/%+v (%v)", id2, g2, id, g, err)
			}
			if !bytes.Equal(re, data[:StreamGrantSize]) {
				t.Fatalf("decode did not reproduce the canonical prefix: %x vs %x", re, data[:StreamGrantSize])
			}
		} else if len(data) >= StreamGrantSize {
			t.Fatalf("%d-byte stream grant body rejected: %v", len(data), err)
		}
		if id, err := ParseStreamID(data); err == nil {
			if id2, err := ParseStreamID(StreamIDBody(id)); err != nil || id2 != id {
				t.Fatalf("stream id round trip diverged: %d vs %d (%v)", id2, id, err)
			}
		} else if len(data) >= 4 {
			t.Fatalf("%d-byte stream id body rejected: %v", len(data), err)
		}
		if h, payload, err := SplitData(data); err == nil {
			h2, _, err := SplitData(AppendSDU(nil, h, payload))
			if err != nil || h2.StreamID != h.StreamID {
				t.Fatalf("StreamID did not survive re-encode: %d vs %d (%v)", h2.StreamID, h.StreamID, err)
			}
		}
	})
}

func FuzzUnmarshalBitmap(f *testing.F) {
	f.Add(NewBitmap(70).Marshal())
	f.Add(NewBitmap(0).Marshal())
	f.Add([]byte{0x00, 0x00, 0x00, 0x40})             // claims 64 SDUs, no words
	f.Add([]byte{0x7f, 0xff, 0xff, 0xff, 0, 0, 0, 0}) // huge count, tiny buffer
	f.Fuzz(func(t *testing.T, data []byte) {
		bm, err := UnmarshalBitmap(data)
		if err != nil {
			return
		}
		// The decode validated the word count against the input, so the
		// bitmap must be fully usable and re-encode canonically.
		if bm.CountSet() > bm.Len() {
			t.Fatalf("%d set bits in a %d-bit map", bm.CountSet(), bm.Len())
		}
		re := bm.Marshal()
		bm2, err := UnmarshalBitmap(re)
		if err != nil {
			t.Fatalf("re-encoded bitmap failed to decode: %v", err)
		}
		if bm2.Len() != bm.Len() || bm2.CountSet() != bm.CountSet() {
			t.Fatalf("round trip diverged: %d/%d vs %d/%d", bm2.CountSet(), bm2.Len(), bm.CountSet(), bm.Len())
		}
	})
}
