package packet

import "encoding/binary"

// Bitmap is the selective-repeat acknowledgment bitmap of Figure 5.
// Bit i corresponds to SDU sequence number i within a session; following
// the paper's convention, a set bit means the SDU was received in error
// (or not at all) and must be retransmitted, and a clear bit means
// "receive OK". A receiver initialises every bit to 1 and clears bits as
// SDUs arrive; an all-zero bitmap therefore acknowledges the complete
// message.
type Bitmap struct {
	n    int
	bits []uint64
}

// NewBitmap returns a bitmap for n SDUs with every bit set (nothing yet
// received), matching the receiver initialisation in Figure 6.
func NewBitmap(n int) *Bitmap {
	b := &Bitmap{n: n, bits: make([]uint64, (n+63)/64)}
	for i := 0; i < n; i++ {
		b.Set(i)
	}
	return b
}

// Len reports the number of SDU slots tracked.
func (b *Bitmap) Len() int { return b.n }

// Set marks SDU i as missing/errored. Out-of-range indices are ignored.
func (b *Bitmap) Set(i int) {
	if i < 0 || i >= b.n {
		return
	}
	b.bits[i/64] |= 1 << (i % 64)
}

// Clear marks SDU i as received OK. Out-of-range indices are ignored.
func (b *Bitmap) Clear(i int) {
	if i < 0 || i >= b.n {
		return
	}
	b.bits[i/64] &^= 1 << (i % 64)
}

// Get reports whether SDU i is still missing.
func (b *Bitmap) Get(i int) bool {
	if i < 0 || i >= b.n {
		return false
	}
	return b.bits[i/64]&(1<<(i%64)) != 0
}

// AnySet reports whether any SDU is still missing — the "Bitmap > 0"
// test in the pseudo code of Figure 6.
func (b *Bitmap) AnySet() bool {
	for _, w := range b.bits {
		if w != 0 {
			return true
		}
	}
	return false
}

// Missing returns the sequence numbers still marked missing, in order.
func (b *Bitmap) Missing() []int {
	var out []int
	for i := 0; i < b.n; i++ {
		if b.Get(i) {
			out = append(out, i)
		}
	}
	return out
}

// CountSet returns the number of missing SDUs.
func (b *Bitmap) CountSet() int {
	c := 0
	for i := 0; i < b.n; i++ {
		if b.Get(i) {
			c++
		}
	}
	return c
}

// Marshal encodes the bitmap as a 4-byte SDU count followed by the
// packed words, suitable for an ACK control packet body.
func (b *Bitmap) Marshal() []byte {
	out := binary.BigEndian.AppendUint32(nil, uint32(b.n))
	for _, w := range b.bits {
		out = binary.BigEndian.AppendUint64(out, w)
	}
	return out
}

// UnmarshalBitmap decodes a bitmap from an ACK body.
func UnmarshalBitmap(p []byte) (*Bitmap, error) {
	if len(p) < 4 {
		return nil, ErrShortPacket
	}
	n := int(binary.BigEndian.Uint32(p))
	words := (n + 63) / 64
	if len(p) < 4+8*words {
		return nil, ErrShortPacket
	}
	b := &Bitmap{n: n, bits: make([]uint64, words)}
	for i := 0; i < words; i++ {
		b.bits[i] = binary.BigEndian.Uint64(p[4+8*i:])
	}
	return b, nil
}
