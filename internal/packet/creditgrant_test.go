package packet

import (
	"errors"
	"testing"
)

// TestCreditGrantRoundTrip pins the CtrlCreditGrant body layout: 20
// bytes, big-endian, Granted then Consumed then Window.
func TestCreditGrantRoundTrip(t *testing.T) {
	grants := []CreditGrant{
		{},
		{Granted: 1, Consumed: 0, Window: 4},
		{Granted: 64, Consumed: 48, Window: 16},
		{Granted: 1 << 40, Consumed: 1<<40 - 3, Window: 1 << 20},
		{Granted: ^uint64(0), Consumed: ^uint64(0), Window: ^uint32(0)},
	}
	for _, g := range grants {
		enc := AppendCreditGrant(nil, g)
		if len(enc) != CreditGrantSize {
			t.Fatalf("encoded %+v to %d bytes, want %d", g, len(enc), CreditGrantSize)
		}
		dec, err := ParseCreditGrant(enc)
		if err != nil {
			t.Fatalf("decode %+v: %v", g, err)
		}
		if dec != g {
			t.Fatalf("round trip diverged: %+v vs %+v", dec, g)
		}
	}
}

// TestCreditGrantShort pins the decoder's error on every truncation.
func TestCreditGrantShort(t *testing.T) {
	enc := AppendCreditGrant(nil, CreditGrant{Granted: 9, Consumed: 3, Window: 8})
	for n := 0; n < CreditGrantSize; n++ {
		if _, err := ParseCreditGrant(enc[:n]); !errors.Is(err, ErrShortPacket) {
			t.Fatalf("%d-byte body: got %v, want ErrShortPacket", n, err)
		}
	}
}

// TestCreditGrantIgnoresTrailing checks that a longer body decodes
// from its fixed-size prefix — forward compatibility for widened
// grants.
func TestCreditGrantIgnoresTrailing(t *testing.T) {
	want := CreditGrant{Granted: 7, Consumed: 5, Window: 2}
	enc := append(AppendCreditGrant(nil, want), 0xde, 0xad)
	got, err := ParseCreditGrant(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("got %+v, want %+v", got, want)
	}
}

// TestCreditGrantControlType pins the wire value and diagnostic string
// of the new control type so stored traces stay decodable.
func TestCreditGrantControlType(t *testing.T) {
	if got := uint16(CtrlCreditGrant); got != 12 {
		t.Fatalf("CtrlCreditGrant wire value changed: %d, want 12", got)
	}
	if got := CtrlCreditGrant.String(); got != "CREDITGRANT" {
		t.Fatalf("CtrlCreditGrant.String() = %q", got)
	}
	// And the full control packet carrying it round-trips.
	c := Control{
		Type:   CtrlCreditGrant,
		ConnID: 3,
		Body:   AppendCreditGrant(nil, CreditGrant{Granted: 12, Consumed: 4, Window: 8}),
	}
	dec, err := UnmarshalControl(c.Marshal(nil))
	if err != nil {
		t.Fatal(err)
	}
	g, err := ParseCreditGrant(dec.Body)
	if err != nil {
		t.Fatal(err)
	}
	if g.Granted != 12 || g.Consumed != 4 || g.Window != 8 {
		t.Fatalf("grant diverged through Control: %+v", g)
	}
}
