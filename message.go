package ncs

import (
	"errors"
	"fmt"

	"ncs/internal/xdr"
)

// ErrDecode is returned when a typed message cannot be decoded.
var ErrDecode = errors.New("ncs: typed message decode failed")

// Packer builds a typed message in external data representation, the
// way PVM's pvm_pk* family does: values packed on any platform unpack
// identically on any other, which is what lets one NCS program span
// the heterogeneous clusters of Figure 3. Use NewPacker, pack values
// in order, then Send the Bytes over any connection; the receiver
// unpacks with an Unpacker in the same order.
type Packer struct {
	enc *xdr.Encoder
}

// NewPacker returns an empty Packer.
func NewPacker() *Packer { return &Packer{enc: xdr.NewEncoder(64)} }

// Int64 packs a 64-bit integer.
func (p *Packer) Int64(v int64) *Packer { p.enc.PutInt64(v); return p }

// Uint32 packs a 32-bit unsigned integer.
func (p *Packer) Uint32(v uint32) *Packer { p.enc.PutUint32(v); return p }

// Float64 packs a double.
func (p *Packer) Float64(v float64) *Packer { p.enc.PutFloat64(v); return p }

// Bool packs a boolean.
func (p *Packer) Bool(v bool) *Packer { p.enc.PutBool(v); return p }

// String packs a string.
func (p *Packer) String(s string) *Packer { p.enc.PutString(s); return p }

// Bytes packs opaque bytes.
func (p *Packer) Bytes(b []byte) *Packer { p.enc.PutOpaque(b); return p }

// Float64s packs a counted slice of doubles.
func (p *Packer) Float64s(vs []float64) *Packer { p.enc.PutFloat64Slice(vs); return p }

// Int32s packs a counted slice of 32-bit integers.
func (p *Packer) Int32s(vs []int32) *Packer { p.enc.PutInt32Slice(vs); return p }

// Message returns the packed wire form, ready for Connection.Send or
// any group collective.
func (p *Packer) Message() []byte { return p.enc.Bytes() }

// Unpacker decodes a typed message produced by a Packer. Each method
// consumes the next value; types and order must match the packing
// side. The first failure sticks: subsequent calls return zero values
// and Err reports the cause.
type Unpacker struct {
	dec *xdr.Decoder
	err error
}

// NewUnpacker reads the typed message in p.
func NewUnpacker(p []byte) *Unpacker { return &Unpacker{dec: xdr.NewDecoder(p)} }

// Err returns the first decode error, if any.
func (u *Unpacker) Err() error { return u.err }

func fail[T any](u *Unpacker, err error) T {
	var zero T
	if u.err == nil {
		u.err = fmt.Errorf("%w: %v", ErrDecode, err)
	}
	return zero
}

// Int64 unpacks a 64-bit integer.
func (u *Unpacker) Int64() int64 {
	if u.err != nil {
		return 0
	}
	v, err := u.dec.Int64()
	if err != nil {
		return fail[int64](u, err)
	}
	return v
}

// Uint32 unpacks a 32-bit unsigned integer.
func (u *Unpacker) Uint32() uint32 {
	if u.err != nil {
		return 0
	}
	v, err := u.dec.Uint32()
	if err != nil {
		return fail[uint32](u, err)
	}
	return v
}

// Float64 unpacks a double.
func (u *Unpacker) Float64() float64 {
	if u.err != nil {
		return 0
	}
	v, err := u.dec.Float64()
	if err != nil {
		return fail[float64](u, err)
	}
	return v
}

// Bool unpacks a boolean.
func (u *Unpacker) Bool() bool {
	if u.err != nil {
		return false
	}
	v, err := u.dec.Bool()
	if err != nil {
		return fail[bool](u, err)
	}
	return v
}

// String unpacks a string.
func (u *Unpacker) String() string {
	if u.err != nil {
		return ""
	}
	v, err := u.dec.String()
	if err != nil {
		return fail[string](u, err)
	}
	return v
}

// Bytes unpacks opaque bytes (copied; safe to retain).
func (u *Unpacker) Bytes() []byte {
	if u.err != nil {
		return nil
	}
	v, err := u.dec.Opaque()
	if err != nil {
		return fail[[]byte](u, err)
	}
	out := make([]byte, len(v))
	copy(out, v)
	return out
}

// Float64s unpacks a counted slice of doubles.
func (u *Unpacker) Float64s() []float64 {
	if u.err != nil {
		return nil
	}
	v, err := u.dec.Float64Slice()
	if err != nil {
		return fail[[]float64](u, err)
	}
	return v
}

// Int32s unpacks a counted slice of 32-bit integers.
func (u *Unpacker) Int32s() []int32 {
	if u.err != nil {
		return nil
	}
	v, err := u.dec.Int32Slice()
	if err != nil {
		return fail[[]int32](u, err)
	}
	return v
}
